"""Independent proof verification.

The proof *engine* searches for proofs; this module implements the other
half of the §3.1 contract — a verifier that, given a :class:`Proof`,
re-establishes from first principles that it is sound:

1. every credential is authentic (issuer signature), unexpired, unrevoked;
2. the membership chain is *connected*: it starts at the claimed subject,
   each link's role equals the next link's subject, and it ends at the
   claimed role;
3. no membership link is an assignment credential;
4. every third-party link's issuer holds the right of assignment for the
   link's role, provable from the proof's own support set;
5. the claimed attributes equal the attenuated meet along the chain.

The verifier shares no code with the search (it re-derives everything), so
tests can use it adversarially: every proof any search strategy returns
must verify, and every mutation of a valid proof must fail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..crypto.keys import PublicIdentity
from .delegation import Delegation, DelegationType
from .model import (
    Attributes,
    EntityRef,
    IncompatibleAttributes,
    Role,
    meet_attributes,
    subject_key,
)
from .monitor import RevocationDirectory
from .proof import Proof


@dataclass(slots=True)
class VerificationResult:
    """Outcome of a verification pass."""

    ok: bool
    errors: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


class ProofVerifier:
    """Re-derives the validity of a finished proof."""

    def __init__(
        self,
        identities: dict[str, PublicIdentity],
        revocations: RevocationDirectory | None = None,
        *,
        now: float = 0.0,
    ) -> None:
        self._identities = identities
        self._revocations = revocations or RevocationDirectory()
        self._now = now

    def verify(self, proof: Proof) -> VerificationResult:
        errors: list[str] = []
        self._check_credentials(proof, errors)
        self._check_chain_shape(proof, errors)
        self._check_issuer_authority(proof, errors)
        self._check_attributes(proof, errors)
        return VerificationResult(ok=not errors, errors=errors)

    def require_valid(self, proof: Proof) -> None:
        result = self.verify(proof)
        if not result.ok:
            from ..errors import AuthorizationError

            raise AuthorizationError(
                "proof verification failed: " + "; ".join(result.errors)
            )

    # -- checks ------------------------------------------------------------

    def _check_credentials(self, proof: Proof, errors: list[str]) -> None:
        for delegation in proof.all_delegations():
            identity = self._identities.get(delegation.issuer)
            if identity is None:
                errors.append(
                    f"{delegation.credential_id}: unknown issuer {delegation.issuer!r}"
                )
                continue
            if not delegation.verify_signature(identity):
                errors.append(f"{delegation.credential_id}: signature invalid")
            if delegation.is_expired(self._now):
                errors.append(f"{delegation.credential_id}: expired")
            if self._revocations.is_revoked(delegation):
                errors.append(f"{delegation.credential_id}: revoked")

    def _check_chain_shape(self, proof: Proof, errors: list[str]) -> None:
        if not proof.chain:
            errors.append("empty membership chain")
            return
        first = proof.chain[0]
        if subject_key(first.subject) != subject_key(proof.subject):
            errors.append(
                f"chain starts at {subject_key(first.subject)!r}, "
                f"not the claimed subject {subject_key(proof.subject)!r}"
            )
        for prev, nxt in zip(proof.chain, proof.chain[1:]):
            if not isinstance(nxt.subject, Role) or str(prev.role) != str(nxt.subject):
                errors.append(
                    f"chain broken between {prev.credential_id} "
                    f"({prev.role}) and {nxt.credential_id} "
                    f"({subject_key(nxt.subject)})"
                )
        last = proof.chain[-1]
        if str(last.role) != str(proof.role):
            errors.append(
                f"chain ends at {last.role}, not the claimed role {proof.role}"
            )
        for delegation in proof.chain:
            if delegation.grants_assignment_right:
                errors.append(
                    f"{delegation.credential_id}: assignment credential used "
                    f"as a membership link"
                )

    def _check_issuer_authority(self, proof: Proof, errors: list[str]) -> None:
        support = proof.support
        for delegation in proof.chain:
            if delegation.delegation_type is DelegationType.SELF_CERTIFYING:
                if delegation.issuer != delegation.role.owner:
                    errors.append(
                        f"{delegation.credential_id}: labelled self-certifying "
                        f"but issuer does not own the role"
                    )
                continue
            if delegation.delegation_type is DelegationType.THIRD_PARTY:
                if not self._assignment_provable(
                    EntityRef(delegation.issuer), delegation.role, support, proof, set()
                ):
                    errors.append(
                        f"{delegation.credential_id}: third-party issuer "
                        f"{delegation.issuer!r} has no assignment-right chain "
                        f"for {delegation.role} in the support set"
                    )

    def _assignment_provable(
        self,
        holder: EntityRef | Role,
        role: Role,
        support: list[Delegation],
        proof: Proof,
        seen: set[str],
    ) -> bool:
        """Check the support set contains an assignment chain for holder."""
        key = f"{subject_key(holder)}|{role}"
        if key in seen:
            return False
        seen = seen | {key}
        for delegation in support:
            if not delegation.grants_assignment_right:
                continue
            if str(delegation.role) != str(role):
                continue
            issuer_ok = delegation.issuer == delegation.role.owner or (
                self._assignment_provable(
                    EntityRef(delegation.issuer), role, support, proof, seen
                )
            )
            if not issuer_ok:
                continue
            if subject_key(delegation.subject) == subject_key(holder):
                return True
            if isinstance(delegation.subject, Role):
                # Membership of the subject role must be provable from the
                # proof's own credential pool.
                pool = proof.all_delegations()
                if self._membership_provable(holder, delegation.subject, pool, set()):
                    return True
        return False

    def _membership_provable(
        self,
        subject: EntityRef | Role,
        role: Role,
        pool: list[Delegation],
        seen: set[str],
    ) -> bool:
        key = f"{subject_key(subject)}|{role}"
        if key in seen:
            return False
        seen = seen | {key}
        for delegation in pool:
            if delegation.grants_assignment_right:
                continue
            if str(delegation.role) != str(role):
                continue
            if subject_key(delegation.subject) == subject_key(subject):
                return True
            if isinstance(delegation.subject, Role) and self._membership_provable(
                subject, delegation.subject, pool, seen
            ):
                return True
        return False

    def _check_attributes(self, proof: Proof, errors: list[str]) -> None:
        try:
            expected: Attributes = {}
            for delegation in proof.chain:
                expected = meet_attributes(expected, delegation.attributes)
        except IncompatibleAttributes as exc:
            errors.append(f"chain attributes are incompatible: {exc}")
            return
        if set(expected) != set(proof.attributes):
            errors.append(
                f"claimed attribute keys {sorted(proof.attributes)} differ "
                f"from derived {sorted(expected)}"
            )
            return
        for name, value in expected.items():
            if str(proof.attributes[name]) != str(value):
                errors.append(
                    f"attribute {name}: claimed {proof.attributes[name]}, "
                    f"derived {value}"
                )
