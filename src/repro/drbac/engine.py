"""DrbacEngine: the top-level dRBAC façade.

Packages the pieces the rest of the framework consumes: an identity
directory for signature verification, the distributed repository, the
revocation directory, the proof engine, and monitored authorization.

Section 3.1's protocol: "a trust-sensitive component C ... presents the
public identity of S, a set of required access rights R, and the
credentials X to a dRBAC implementation.  The dRBAC module first
authenticates the signatures and establishes validity monitors for all the
credentials in X.  Authorization is granted if the dRBAC module can
construct a graph (proof) ..." — :meth:`DrbacEngine.authorize` implements
exactly that, returning the proof together with its live
:class:`~repro.drbac.monitor.ProofMonitor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from .. import obs
from ..clock import Clock, ManualClock
from ..crypto.keys import Identity, KeyStore, PublicIdentity
from ..errors import AuthorizationError
from ..obs import names as metric_names
from .delegation import Delegation, issue
from .incremental import IncrementalProofEngine
from .model import Attributes, EntityRef, Role, Subject
from .monitor import MonitorHub, ProofMonitor, RevocationDirectory
from .proof import Proof, ProofEngine, SearchDirection
from .query import Constraint, ConstraintEvaluator
from .repository import DistributedRepository


@dataclass(slots=True)
class AuthorizationResult:
    """A granted authorization: the proof plus its continuous monitor."""

    proof: Proof
    monitor: ProofMonitor

    @property
    def valid(self) -> bool:
        return self.monitor.valid

    def close(self) -> None:
        self.monitor.close()


class DrbacEngine:
    """One dRBAC evaluation context shared by a scenario.

    Holds the key store (simulated PKI), the identity directory, the
    distributed repository, and the revocation directory.  Guards
    (:mod:`repro.psf.guard`) each wrap one engine entity for their domain.
    """

    def __init__(
        self,
        *,
        key_store: KeyStore | None = None,
        key_bits: int | None = None,
        clock: Clock | None = None,
        verify_signatures: bool = True,
        incremental: bool = True,
    ) -> None:
        # `is None` check: an empty KeyStore is falsy (it has __len__),
        # so `or` would silently discard a caller-provided store.
        if key_store is None:
            key_store = KeyStore(key_bits=key_bits) if key_bits else KeyStore()
        self.key_store = key_store
        self.clock = clock if clock is not None else ManualClock()
        self.repository = DistributedRepository()
        self.revocations = RevocationDirectory()
        self._verify_signatures = verify_signatures
        self.monitor_hub = MonitorHub(self.revocations)
        self.search_work = 0
        """Deterministic cost counter: credential edges inspected by full
        proof searches issued through this engine (the full arm's
        work-unit meter in ``bench-churn``)."""
        self.incremental: IncrementalProofEngine | None = (
            IncrementalProofEngine(self) if incremental else None
        )

    # -- identity management ----------------------------------------------

    def identity(self, name: str) -> Identity:
        """The full identity (with private key) for an entity name."""
        return self.key_store.identity(name)

    def public_identity(self, name: str) -> PublicIdentity:
        return self.key_store.public(name)

    def _identity_directory(self) -> dict[str, PublicIdentity]:
        return {
            name: self.key_store.public(name)
            for name in self.key_store.known_names()
        }

    # -- credential issuing -------------------------------------------------

    def delegate(
        self,
        issuer: str,
        subject: Subject | str,
        role: Role | str,
        *,
        assignment: bool = False,
        attributes: Attributes | None = None,
        expires_at: float | None = None,
        requires_monitoring: bool = False,
        publish: bool = True,
    ) -> Delegation:
        """Issue (and by default publish) a signed delegation.

        String arguments are parsed: a ``subject`` string naming a known
        entity becomes an :class:`EntityRef`; otherwise dotted strings are
        roles.  ``role`` strings always parse as roles.
        """
        if isinstance(role, str):
            role = Role.parse(role)
        if isinstance(subject, str):
            subject = self._parse_subject(subject)
        delegation = issue(
            self.identity(issuer),
            subject,
            role,
            assignment=assignment,
            attributes=attributes,
            expires_at=expires_at,
            requires_monitoring=requires_monitoring,
        )
        if publish:
            self.repository.publish(delegation)
        return delegation

    def _parse_subject(self, text: str) -> Subject:
        if text in self.key_store or "." not in text:
            return EntityRef(text)
        return Role.parse(text)

    def revoke(self, delegation: Delegation) -> None:
        """Revoke a credential at its home; live monitors fire."""
        self.revocations.revoke(delegation)

    # -- authorization -------------------------------------------------------

    def proof_engine(self) -> ProofEngine:
        return ProofEngine(
            self._identity_directory(),
            self.revocations,
            now=self.clock.now(),
            verify_signatures=self._verify_signatures,
        )

    def find_proof(
        self,
        subject: Subject | str,
        role: Role | str,
        credentials: Iterable[Delegation] | None = None,
        *,
        required_attributes: Attributes | None = None,
        direction: SearchDirection = "regression",
    ) -> Optional[Proof]:
        """Search for a proof; harvests from the repository when no
        explicit credential set is presented."""
        if isinstance(role, str):
            role = Role.parse(role)
        if isinstance(subject, str):
            subject = self._parse_subject(subject)
        if credentials is None:
            credentials = self.repository.collect(subject, role)
        searcher = self.proof_engine()
        try:
            return searcher.find_proof(
                subject,
                role,
                credentials,
                required_attributes=required_attributes,
                direction=direction,
            )
        finally:
            self.search_work += searcher.edges_visited

    def prove(
        self,
        subject: Subject | str,
        role: Role | str,
        *,
        required_attributes: Attributes | None = None,
    ) -> Optional[Proof]:
        """Repository-backed proof query, served incrementally when safe.

        The maintained reach sets answer the query while the graph stays
        in the incremental engine's simple regime; attribute-constrained
        queries, non-simple graphs, and engines built with
        ``incremental=False`` all take the identical full-search path
        (harvest + regression), which therefore remains the oracle.
        """
        if isinstance(role, str):
            role = Role.parse(role)
        if isinstance(subject, str):
            subject = self._parse_subject(subject)
        if self.incremental is not None:
            handled, proof = self.incremental.try_prove(
                subject, role, required_attributes
            )
            if handled:
                return proof
        return self.find_proof(
            subject, role, None, required_attributes=required_attributes
        )

    def authorize(
        self,
        subject: Subject | str,
        role: Role | str,
        credentials: Iterable[Delegation] | None = None,
        *,
        required_attributes: Attributes | None = None,
    ) -> AuthorizationResult:
        """Authorize or raise, establishing validity monitors on success."""
        if credentials is None:
            proof = self.prove(
                subject, role, required_attributes=required_attributes
            )
        else:
            proof = self.find_proof(
                subject, role, credentials, required_attributes=required_attributes
            )
        if proof is None:
            obs.counter(metric_names.AUTHORIZE_DENIED).inc()
            raise AuthorizationError(
                f"no proof that {subject} holds {role}"
                + (
                    f" with {required_attributes}"
                    if required_attributes
                    else ""
                )
            )
        obs.counter(metric_names.AUTHORIZE_GRANTED).inc()
        monitor = ProofMonitor(
            proof.all_delegations(), self.revocations, hub=self.monitor_hub
        )
        return AuthorizationResult(proof=proof, monitor=monitor)

    def evaluator(self) -> ConstraintEvaluator:
        return ConstraintEvaluator(self.proof_engine())

    def is_a(
        self,
        subject: Subject | str,
        constraint: Constraint | str,
        credentials: Iterable[Delegation] | None = None,
    ) -> Optional[Proof]:
        """The paper's "is X a Y?" query form."""
        if isinstance(constraint, str):
            constraint = Constraint.parse(constraint)
        if isinstance(subject, str):
            subject = self._parse_subject(subject)
        if credentials is None:
            credentials = self.repository.collect(subject, constraint.role)
        return self.evaluator().is_a(subject, constraint, credentials)
