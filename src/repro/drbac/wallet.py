"""Credential wallets: the per-principal credential set.

Clients, components, and nodes each carry a wallet of delegations they can
present during authorization ("the component ... presents a chain of
credentials", §3.3).  Deployed components "receive their own set of
credentials" — :meth:`Wallet.grant` models the deployment infrastructure
issuing those.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .delegation import Delegation


@dataclass
class Wallet:
    """An ordered, deduplicated credential set owned by one principal."""

    owner: str
    _credentials: dict[str, Delegation] = field(default_factory=dict)

    def grant(self, delegation: Delegation) -> None:
        """Add a credential (idempotent by credential id)."""
        self._credentials[delegation.credential_id] = delegation

    def grant_all(self, delegations: list[Delegation]) -> None:
        for delegation in delegations:
            self.grant(delegation)

    def remove(self, credential_id: str) -> bool:
        """Drop a credential; returns whether it was present."""
        return self._credentials.pop(credential_id, None) is not None

    def credentials(self) -> list[Delegation]:
        """The presentable credential list (insertion order)."""
        return list(self._credentials.values())

    def __len__(self) -> int:
        return len(self._credentials)

    def __contains__(self, credential_id: str) -> bool:
        return credential_id in self._credentials

    def __iter__(self):
        return iter(self._credentials.values())
