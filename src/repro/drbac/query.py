"""Constraint queries: using credentials as statements (Section 3.2).

"A dRBAC credential that grants the permissions associated with an Object
role to a Subject role can also be interpreted as the statement that 'it is
true that Subject **is an** Object'. ... Constraints are specified in terms
of dRBAC system queries: 'is X a Y?'"

This is the mechanism PSF uses to translate *network-level* properties
(``Comp.SD.PC`` is a ``Dell.SuSe``) into *application-level* properties
(``Dell.SuSe`` is a ``Mail.Node`` with ``Secure={true,false}``
``Trust=(0,7)``) without either domain knowing the other's vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from .delegation import Delegation
from .model import Attributes, Role, Subject, parse_attribute
from .proof import Proof, ProofEngine


@dataclass(frozen=True, slots=True)
class Constraint:
    """A requirement "X must possess role Y (with attributes ...)"."""

    role: Role
    required_attributes: Attributes = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.required_attributes is None:
            object.__setattr__(self, "required_attributes", {})

    @staticmethod
    def parse(text: str) -> "Constraint":
        """Parse ``"Mail.Node with Secure={true} Trust=(5,10)"``."""
        head, _, tail = text.partition(" with ")
        role = Role.parse(head.strip())
        attributes: Attributes = {}
        if tail:
            for token in tail.split():
                name, _, value = token.partition("=")
                if not value:
                    raise ValueError(f"malformed attribute token: {token!r}")
                attributes[name] = parse_attribute(value)
        return Constraint(role=role, required_attributes=attributes)

    def __str__(self) -> str:
        attrs = ""
        if self.required_attributes:
            attrs = " with " + " ".join(
                f"{k}={v}" for k, v in sorted(self.required_attributes.items())
            )
        return f"{self.role}{attrs}"


class ConstraintEvaluator:
    """Answers "is X a Y?" over a credential set via the proof engine."""

    def __init__(self, engine: ProofEngine) -> None:
        self._engine = engine

    def is_a(
        self,
        subject: Subject,
        constraint: Constraint,
        credentials: Iterable[Delegation],
    ) -> Optional[Proof]:
        """Return the proof that ``subject`` satisfies ``constraint``.

        None means the constraint cannot be satisfied with the presented
        credentials (either no role chain exists or the attenuated
        attributes are too weak).
        """
        return self._engine.find_proof(
            subject,
            constraint.role,
            credentials,
            required_attributes=constraint.required_attributes or None,
        )

    def satisfies_all(
        self,
        subject: Subject,
        constraints: list[Constraint],
        credentials: Iterable[Delegation],
    ) -> bool:
        credentials = list(credentials)
        return all(
            self.is_a(subject, constraint, credentials) is not None
            for constraint in constraints
        )
