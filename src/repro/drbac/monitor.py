"""Online validity monitoring and revocation (Section 3.1).

"A dRBAC credential ... may additionally require online validation
monitoring from an authorized 'home' which is aware of any revocation of
the delegation."

Each home entity runs a :class:`RevocationAuthority`.  Verifiers attach
:class:`ValidityMonitor` subscriptions per credential; a
:class:`ProofMonitor` aggregates the monitors for every credential in a
proof graph and fires callbacks the moment any of them is revoked — the
mechanism Switchboard relies on for *continuous* authorization (§4.3).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable

from .delegation import Delegation

RevocationCallback = Callable[[str], None]
"""Called with the revoked credential id."""


class RevocationAuthority:
    """Per-home revocation state with push notifications to subscribers."""

    def __init__(self, home: str) -> None:
        self.home = home
        self._revoked: set[str] = set()
        self._subscribers: dict[str, list[RevocationCallback]] = defaultdict(list)

    def revoke(self, credential_id: str) -> None:
        """Revoke a credential and notify every active monitor for it."""
        if credential_id in self._revoked:
            return
        self._revoked.add(credential_id)
        for callback in list(self._subscribers.get(credential_id, ())):
            callback(credential_id)

    def is_revoked(self, credential_id: str) -> bool:
        return credential_id in self._revoked

    def subscribe(self, credential_id: str, callback: RevocationCallback) -> Callable[[], None]:
        """Register a callback for one credential; returns an unsubscribe."""
        self._subscribers[credential_id].append(callback)
        if credential_id in self._revoked:
            # Late subscriber: deliver the revocation immediately.
            callback(credential_id)

        def unsubscribe() -> None:
            try:
                self._subscribers[credential_id].remove(callback)
            except ValueError:
                pass

        return unsubscribe

    @property
    def revoked_count(self) -> int:
        return len(self._revoked)


class RevocationDirectory:
    """Locates the :class:`RevocationAuthority` for each home entity.

    Simulates the "authorized home" lookup: in the real system the home is
    a network service; here it is an in-process registry shared by the
    scenario.
    """

    def __init__(self) -> None:
        self._authorities: dict[str, RevocationAuthority] = {}

    def authority(self, home: str) -> RevocationAuthority:
        auth = self._authorities.get(home)
        if auth is None:
            auth = RevocationAuthority(home)
            self._authorities[home] = auth
        return auth

    def is_revoked(self, delegation: Delegation) -> bool:
        auth = self._authorities.get(delegation.home_entity)
        return bool(auth and auth.is_revoked(delegation.credential_id))

    def revoke(self, delegation: Delegation) -> None:
        self.authority(delegation.home_entity).revoke(delegation.credential_id)

    def reset(self) -> None:
        """Forget every authority (crash recovery).

        Revocation sets are volatile node state in this model; the
        durable layer replays them from its log.  Subscriptions held by
        pre-crash monitors point at the discarded authorities and can
        never fire again — their unsubscribe closures become no-ops.
        """
        self._authorities.clear()


class MonitorHub:
    """Deduplicates authority subscriptions: one per credential id.

    Without the hub, every :class:`ProofMonitor` (and every cached
    authorization entry) registers its own callback at the credential's
    home :class:`RevocationAuthority`, so a hot credential shared by
    thousands of cached entries accumulates O(entries) callbacks there.
    The hub holds exactly *one* authority subscription per credential and
    fans the revocation out to however many local listeners are attached;
    when the last listener detaches, the authority subscription is
    dropped too.
    """

    def __init__(self, directory: RevocationDirectory) -> None:
        self._directory = directory
        self._channels: dict[str, _HubChannel] = {}

    def attach(
        self, delegation: Delegation, callback: RevocationCallback
    ) -> Callable[[], None]:
        """Listen for revocation of one credential; returns a detach.

        Mirrors :meth:`RevocationAuthority.subscribe`: a late attach for
        an already-revoked credential fires the callback immediately.
        """
        cred_id = delegation.credential_id
        channel = self._channels.get(cred_id)
        if channel is None:
            channel = _HubChannel()

            def fan_out(credential_id: str, _channel: _HubChannel = channel) -> None:
                for listener in list(_channel.listeners.values()):
                    listener(credential_id)

            authority = self._directory.authority(delegation.home_entity)
            channel.unsubscribe = authority.subscribe(cred_id, fan_out)
            self._channels[cred_id] = channel
        handle = channel.next_handle
        channel.next_handle += 1
        channel.listeners[handle] = callback
        if self._directory.is_revoked(delegation):
            # The authority-level immediate delivery hit an empty channel
            # (or a previous attach); deliver to this listener directly.
            callback(cred_id)

        def detach() -> None:
            current = self._channels.get(cred_id)
            if current is not channel or handle not in channel.listeners:
                return
            del channel.listeners[handle]
            if not channel.listeners:
                channel.unsubscribe()
                del self._channels[cred_id]

        return detach

    def reset(self) -> None:
        """Sever every channel (crash recovery).

        Channels are removed from the table *first*, so the stale detach
        closures held by pre-crash monitors see ``current is not channel``
        and return without touching post-recovery subscriptions.
        """
        channels = list(self._channels.values())
        self._channels.clear()
        for channel in channels:
            channel.unsubscribe()
            channel.listeners.clear()

    def listener_count(self, credential_id: str) -> int:
        """Local listeners attached for one credential (introspection)."""
        channel = self._channels.get(credential_id)
        return len(channel.listeners) if channel is not None else 0

    def watched_credential_count(self) -> int:
        return len(self._channels)


class _HubChannel:
    """Fan-out state for one credential inside a :class:`MonitorHub`."""

    __slots__ = ("listeners", "next_handle", "unsubscribe")

    def __init__(self) -> None:
        self.listeners: dict[int, RevocationCallback] = {}
        self.next_handle = 0
        self.unsubscribe: Callable[[], None] = lambda: None


@dataclass
class ValidityMonitor:
    """An established online monitor for a single credential."""

    delegation: Delegation
    _unsubscribe: Callable[[], None] = field(repr=False, default=lambda: None)
    revoked: bool = False

    def close(self) -> None:
        self._unsubscribe()


class ProofMonitor:
    """Watches every credential used by a proof.

    The monitor is *valid* until any watched credential is revoked; at that
    moment every registered callback fires exactly once with the offending
    credential id.  Expiry is checked on demand via :meth:`check_expiry`
    because expiry is a function of the clock, not an event.
    """

    def __init__(
        self,
        delegations: list[Delegation],
        directory: RevocationDirectory,
        *,
        hub: MonitorHub | None = None,
    ) -> None:
        self._delegations = list(delegations)
        self._callbacks: list[RevocationCallback] = []
        self._invalidated_by: str | None = None
        self._monitors: list[ValidityMonitor] = []
        for delegation in self._delegations:
            monitor = ValidityMonitor(delegation)
            if hub is not None:
                monitor._unsubscribe = hub.attach(delegation, self._on_revoked)
            else:
                authority = directory.authority(delegation.home_entity)
                monitor._unsubscribe = authority.subscribe(
                    delegation.credential_id, self._on_revoked
                )
            self._monitors.append(monitor)

    @property
    def valid(self) -> bool:
        return self._invalidated_by is None

    @property
    def invalidated_by(self) -> str | None:
        return self._invalidated_by

    @property
    def watched_credentials(self) -> list[str]:
        return [d.credential_id for d in self._delegations]

    def on_invalidated(self, callback: RevocationCallback) -> None:
        """Register a callback; fires immediately if already invalid."""
        self._callbacks.append(callback)
        if self._invalidated_by is not None:
            callback(self._invalidated_by)

    def check_expiry(self, now: float) -> bool:
        """Invalidate the proof if any credential has expired at ``now``.

        Returns the (possibly updated) validity.
        """
        if self._invalidated_by is not None:
            return False
        for delegation in self._delegations:
            if delegation.is_expired(now):
                self._on_revoked(delegation.credential_id)
                return False
        return True

    def close(self) -> None:
        for monitor in self._monitors:
            monitor.close()

    def _on_revoked(self, credential_id: str) -> None:
        if self._invalidated_by is not None:
            return
        self._invalidated_by = credential_id
        for callback in list(self._callbacks):
            callback(credential_id)
