"""Command-line entry points: ``python -m repro [stats|chaos]``.

The default (no arguments) is the self-check: it builds the paper's
three-site scenario end to end and verifies the core behavioural battery
— Table 2 authorizations, Table 4 view resolution, VIG generation of the
Table 5 view, QoS adaptation planning, and a live revocation — printing
one PASS/FAIL line per check.  Exit status is non-zero when any check
fails, so the command doubles as a smoke test for packaging and new
environments.

``python -m repro stats [--json]`` exercises the same scenario under the
:mod:`repro.obs` observability layer — proof searches in both directions,
cached authorization, a plan/deploy cycle over a Switchboard channel, and
mail traffic through the deployed view — then dumps the metrics registry
as a formatted table (or JSON).

``python -m repro chaos --seed N --duration S [--json]`` runs the
deterministic fault-injection harness (:mod:`repro.faults`): a seeded
storm of link failures, partitions, node crashes, latency spikes, loss
bursts, and revocations against two adapted sessions, with per-class
recovery verification and an invariant sweep.  Identical seeds produce
byte-identical ``--json`` reports; exit status is non-zero when any
invariant is violated.

``python -m repro bench-load --seed N --clients C [--json]`` measures the
high-throughput session layer (:mod:`repro.load`): the same seeded mixed
view/RPC workload through a serial baseline and through RPC pipelining +
frame batching, reporting virtual-time throughput, latency percentiles,
authorization-cache hit rates, and the serial-vs-pipelined differential
check.  Same seed, byte-identical JSON.

``python -m repro bench-overload --seed N [--json]`` runs the overload
experiment (:mod:`repro.flow` + :mod:`repro.load.overload`): the same
seeded open-loop workload at 1x/3x/10x of service capacity, once with
admission control off (unbounded queue, latency collapse) and once with
the full flow stack (token buckets, weighted fair queueing, typed sheds
with retry-after hints).  The report asserts the overload invariants —
goodput retention at 10x, zero monitor-class sheds, no starvation of the
lowest class — and exits non-zero when one fails.  Same seed,
byte-identical JSON.

``python -m repro bench-churn --seed N [--ops K] [--json]`` replays one
seeded publish/revoke/expiry/authorize schedule through the full-search
and incremental authorization engines (:mod:`repro.load.churn`) behind
the same sharded cache, comparing deterministic work units — credential
edges searched + repository queries + incremental maintenance — with the
headline authorize-after-revoke throughput ratio.  Verdict transcripts
must match across arms and agree with the reference oracle, or the exit
status is non-zero.  Same seed, byte-identical JSON.

``python -m repro bench-recovery --seed N [--ops K] [--crashes C]
[--json]`` replays one seeded schedule with embedded crash/restart
cycles through two arms sharing one update feed (:mod:`repro.load.recovery`):
a :class:`~repro.durable.node.DurableNode` that is repeatedly crashed —
WAL tail torn, revocations landing while it is down — and a control
node that never crashes.  After every recovery a full (subject, role)
verdict battery must match across arms, agree with the reference
oracle, and leave identical durable-state digests, or the exit status
is non-zero.  Recovery cost is reported in deterministic work units;
same seed, byte-identical JSON.

``python -m repro simtest --seed N [--steps S] [--chaos] [--json]`` runs
the model-based simulation checker (:mod:`repro.check`): a seeded
interleaved workload of delegations, revocations, view accesses, and
authorization-guarded RPC is replayed against the real stack while
pure-Python reference oracles predict every observable.  On divergence
the trace is delta-debugged down to a minimal replayable repro
(``--replay FILE`` re-runs one).  ``--mutate ignore-revoke`` /
``--mutate ignore-expiry`` intentionally breaks an oracle to demonstrate
detection and shrinking end to end.  Same seed, byte-identical JSON.  On
divergence, the flight-recorder snapshot captured at the moment the
oracles disagreed is written next to the shrunk repro
(``<out>-flight.json``).

``python -m repro trace --seed N [--chaos] [--out F]`` runs the
distributed-tracing scenario (:mod:`repro.obs.dist`): an authorization-
and view-guarded RPC workload with wire trace-context propagation on,
exported as Chrome/Perfetto trace-event JSON — load the output at
https://ui.perfetto.dev.  ``--chaos`` adds frame loss and at-least-once
retries, so the trace shows per-attempt spans.  Without ``--out`` the
JSON goes to stdout; same seed, byte-identical output.
"""

from __future__ import annotations

import json
import sys
import time

from . import obs
from .drbac.cache import CachedAuthorizer
from .drbac.model import Role
from .errors import AuthorizationError
from .mail import MailClient, build_scenario
from .psf import EdgeRequirement, ServiceRequest


def run_selfcheck(*, key_bits: int = 512, verbose: bool = True) -> int:
    failures = 0

    def check(label: str, condition: bool) -> None:
        nonlocal failures
        status = "PASS" if condition else "FAIL"
        if not condition:
            failures += 1
        if verbose:
            print(f"  [{status}] {label}")

    t0 = time.perf_counter()
    scenario = build_scenario(key_bits=key_bits)
    engine = scenario.engine
    if verbose:
        print(f"scenario built in {time.perf_counter() - t0:.2f}s")
        print("\n-- Table 2 authorizations --")

    check("17 credentials issued", len(scenario.credentials) == 17)
    check("Alice is Comp.NY.Member", engine.find_proof("Alice", "Comp.NY.Member") is not None)
    bob = engine.find_proof("Bob", "Comp.NY.Member")
    check("Bob chains (11)+(2)", bob is not None and len(bob.chain) == 2)
    charlie = engine.find_proof("Charlie", "Comp.NY.Partner")
    check(
        "Charlie chains (15)+(12) with (3)",
        charlie is not None and len(charlie.support) == 1,
    )
    check(
        "sd-pc1 is a secure Mail.Node",
        engine.is_a("sd-pc1", "Mail.Node with Secure={true} Trust=(0,5)") is not None,
    )
    check(
        "se-pc1 is NOT a secure Mail.Node",
        engine.is_a("se-pc1", "Mail.Node with Secure={true}") is None,
    )
    check(
        "CPU budgets 100/80/40",
        (
            scenario.ny_guard.component_cpu_budget(Role("Mail", "MailClient")),
            scenario.sd_guard.component_cpu_budget(Role("Mail", "Encryptor")),
            scenario.se_guard.component_cpu_budget(Role("Mail", "Decryptor")),
        )
        == (100, 80, 40),
    )

    if verbose:
        print("\n-- Table 4 / Table 5: views --")
    policy = scenario.psf.registrar.policy("MailClient")
    check(
        "Charlie resolves to the partner view",
        policy.resolve("Charlie", engine).view_name == "ViewMailClient_Partner",
    )
    check(
        "strangers get the anonymous view",
        policy.resolve("Nobody", engine).view_name == "ViewMailClient_Anonymous",
    )
    spec = scenario.psf.registrar.view_spec("ViewMailClient_Partner")
    view_cls = scenario.psf.vig.generate(spec, MailClient)
    check(
        "VIG generated the Table 5 layout",
        getattr(view_cls.getPhone, "__forwarder__", "") == "_swb_AddressI"
        and getattr(view_cls.sendMessage, "__coherence_wrapped__", False),
    )

    if verbose:
        print("\n-- QoS adaptation --")
    planner = scenario.psf.planner()
    cache_plan = planner.plan(
        ServiceRequest(
            client="Bob", client_node="sd-pc1", interface="MailI",
            qos=EdgeRequirement(min_bandwidth_bps=50e6),
        )
    )
    check("low bandwidth -> cache near client", cache_plan.deployed_names() == ["ViewMailServer"])
    pair_plan = scenario.psf.planner(use_views=False).plan(
        ServiceRequest(
            client="Bob", client_node="sd-pc1", interface="MailI",
            qos=EdgeRequirement(privacy=True, channel="rmi"),
        )
    )
    check(
        "insecure bulk link -> encryptor/decryptor pair",
        sorted(pair_plan.deployed_names()) == ["Decryptor", "Encryptor"],
    )

    if verbose:
        print("\n-- continuous authorization --")
    result = engine.authorize("Charlie", "Comp.NY.Partner")
    engine.revoke(scenario.credentials[12])
    check("revocation invalidates the live proof", not result.valid)

    if verbose:
        print(f"\n{'ALL CHECKS PASSED' if failures == 0 else f'{failures} CHECK(S) FAILED'}")
    return failures


def exercise_scenario(*, key_bits: int = 512):
    """Drive the mail scenario across every instrumented subsystem.

    Used by ``repro stats`` and the observability tests: after this runs,
    the active registry holds non-zero proof-search, cache, channel,
    planning, deployment, and coherence metrics.
    """
    scenario = build_scenario(key_bits=key_bits)
    engine = scenario.engine

    # Proof search, both directions, plus a failing search.
    engine.find_proof("Alice", "Comp.NY.Member")
    engine.find_proof("Bob", "Comp.NY.Member", direction="progression")
    engine.find_proof("Charlie", "Comp.NY.Partner")
    engine.find_proof("Nobody", "Comp.NY.Member")

    # Cached authorization: one miss, repeated hits.
    cache = CachedAuthorizer(engine)
    for _ in range(3):
        cache.authorize("Alice", "Comp.NY.Member")
    try:
        engine.authorize("Nobody", "Comp.NY.Member")
    except AuthorizationError:
        pass

    # Plan + deploy #1: privacy over the insecure WAN forces a Switchboard
    # channel to the existing server; traffic exercises RPC latency.
    plan = scenario.psf.planner().plan(
        ServiceRequest(
            client="Bob",
            client_node="sd-pc1",
            interface="MailI",
            qos=EdgeRequirement(privacy=True),
        )
    )
    deployment = scenario.psf.deployer.deploy(plan)
    access = deployment.client_access()
    access.sendMail(
        {"sender": "Bob", "recipient": "Alice", "subject": "obs", "body": "stats"}
    )
    access.fetchMail("Alice")

    # Plan + deploy #2: a bandwidth demand the WAN cannot carry pulls a
    # ViewMailServer cache next to the client — VIG instantiation plus
    # image-coherence traffic on every call through the view.
    cache_plan = scenario.psf.planner().plan(
        ServiceRequest(
            client="Bob",
            client_node="sd-pc1",
            interface="MailI",
            qos=EdgeRequirement(min_bandwidth_bps=50e6),
        )
    )
    cache_deployment = scenario.psf.deployer.deploy(cache_plan)
    cached_access = cache_deployment.client_access()
    cached_access.fetchMail("Alice")
    return scenario, deployment


def run_stats(argv: list[str] | None = None) -> int:
    """The ``repro stats`` subcommand."""
    argv = argv or []
    unknown = [a for a in argv if a not in ("--json", "--full-keys")]
    if unknown:
        print(f"repro stats: unknown argument {unknown[0]!r}", file=sys.stderr)
        print("usage: python -m repro stats [--json] [--full-keys]", file=sys.stderr)
        return 2
    as_json = "--json" in argv
    key_bits = 1024 if "--full-keys" in argv else 512
    obs.enable()
    obs.reset()
    exercise_scenario(key_bits=key_bits)
    snap = obs.snapshot()
    if as_json:
        print(json.dumps(snap, indent=2, sort_keys=True))
    else:
        print("repro stats: mail-scenario metrics snapshot")
        print(obs.format_snapshot(snap))
    return 0


def run_chaos(argv: list[str] | None = None) -> int:
    """The ``repro chaos`` subcommand."""
    from .faults import ChaosRunner

    argv = list(argv or [])
    usage = "usage: python -m repro chaos [--seed N] [--duration S] [--intensity X] [--json]"
    seed, duration, intensity = 7, 5.0, 1.0
    as_json = False
    index = 0
    while index < len(argv):
        arg = argv[index]
        if arg == "--json":
            as_json = True
            index += 1
            continue
        if arg in ("--seed", "--duration", "--intensity"):
            if index + 1 >= len(argv):
                print(f"repro chaos: {arg} needs a value", file=sys.stderr)
                print(usage, file=sys.stderr)
                return 2
            value = argv[index + 1]
            try:
                if arg == "--seed":
                    seed = int(value)
                elif arg == "--duration":
                    duration = float(value)
                else:
                    intensity = float(value)
            except ValueError:
                print(f"repro chaos: bad value for {arg}: {value!r}", file=sys.stderr)
                return 2
            index += 2
            continue
        print(f"repro chaos: unknown argument {arg!r}", file=sys.stderr)
        print(usage, file=sys.stderr)
        return 2
    try:
        report = ChaosRunner(seed=seed, duration=duration, intensity=intensity).run()
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"repro chaos: run failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    if as_json:
        print(report.to_json(indent=2))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def run_bench_load(argv: list[str] | None = None) -> int:
    """The ``repro bench-load`` subcommand.

    Runs the seeded virtual-time load harness (:mod:`repro.load`) twice
    over one world shape — serial baseline, then pipelined + batched —
    and prints the comparison.  Identical seeds produce byte-identical
    ``--json`` output; exit status is non-zero when the differential
    guarantee fails (serial and pipelined transcripts diverge).
    """
    from .load import run_bench

    argv = list(argv or [])
    usage = (
        "usage: python -m repro bench-load [--seed N] [--clients C]"
        " [--requests R] [--depth D] [--json] [--out PATH]"
    )
    seed, clients, requests, depth = 7, 8, 40, 8
    as_json = False
    out_path: str | None = None
    index = 0
    while index < len(argv):
        arg = argv[index]
        if arg == "--json":
            as_json = True
            index += 1
            continue
        if arg in ("--seed", "--clients", "--requests", "--depth", "--out"):
            if index + 1 >= len(argv):
                print(f"repro bench-load: {arg} needs a value", file=sys.stderr)
                print(usage, file=sys.stderr)
                return 2
            value = argv[index + 1]
            try:
                if arg == "--seed":
                    seed = int(value)
                elif arg == "--clients":
                    clients = int(value)
                elif arg == "--requests":
                    requests = int(value)
                elif arg == "--depth":
                    depth = int(value)
                else:
                    out_path = value
            except ValueError:
                print(
                    f"repro bench-load: bad value for {arg}: {value!r}",
                    file=sys.stderr,
                )
                return 2
            index += 2
            continue
        print(f"repro bench-load: unknown argument {arg!r}", file=sys.stderr)
        print(usage, file=sys.stderr)
        return 2
    try:
        report = run_bench(
            seed=seed, clients=clients, requests=requests, depth=depth
        )
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(
            f"repro bench-load: run failed: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return 1
    rendered = json.dumps(report, indent=2, sort_keys=True)
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    if as_json:
        print(rendered)
    else:
        serial, fast = report["serial"], report["pipelined"]
        print(
            f"bench-load seed={seed} clients={clients} requests={requests} "
            f"depth={depth}"
        )
        for label, run in (("serial   ", serial), ("pipelined", fast)):
            lat = run["latency_s"]
            print(
                f"  {label}: makespan {run['makespan_s']:.4f}s  "
                f"throughput {run['throughput_ops_per_s']:.1f} ops/s  "
                f"p50 {lat['p50'] * 1000:.2f}ms  p95 {lat['p95'] * 1000:.2f}ms  "
                f"p99 {lat['p99'] * 1000:.2f}ms"
            )
        print(
            f"  speedup: {report['speedup']:.2f}x  "
            f"transcripts match: {'yes' if report['transcripts_match'] else 'NO'}  "
            f"cache hit-rate: {fast['cache']['hit_rate']:.3f}"
        )
        print(
            f"  batching: {fast['net']['batches_sent']} batches carried "
            f"{fast['net']['frames_coalesced']} of {fast['net']['messages_sent']} "
            f"frames"
        )
    return 0 if report["transcripts_match"] else 1


def run_bench_churn(argv: list[str] | None = None) -> int:
    """The ``repro bench-churn`` subcommand.

    Replays one seeded publish/revoke/expiry/authorize schedule through
    the full-search and incremental authorization arms
    (:mod:`repro.load.churn`) and prints the work-unit comparison.
    Identical seeds produce byte-identical ``--json`` output; exit
    status is non-zero when the arms' verdict transcripts diverge or
    either arm disagrees with the reference oracle.
    """
    from .load import run_bench_churn as run_churn

    argv = list(argv or [])
    usage = (
        "usage: python -m repro bench-churn [--seed N] [--ops K]"
        " [--json] [--out PATH]"
    )
    seed, ops = 7, 600
    as_json = False
    out_path: str | None = None
    index = 0
    while index < len(argv):
        arg = argv[index]
        if arg == "--json":
            as_json = True
            index += 1
            continue
        if arg in ("--seed", "--ops", "--out"):
            if index + 1 >= len(argv):
                print(f"repro bench-churn: {arg} needs a value", file=sys.stderr)
                print(usage, file=sys.stderr)
                return 2
            value = argv[index + 1]
            try:
                if arg == "--seed":
                    seed = int(value)
                elif arg == "--ops":
                    ops = int(value)
                else:
                    out_path = value
            except ValueError:
                print(
                    f"repro bench-churn: bad value for {arg}: {value!r}",
                    file=sys.stderr,
                )
                return 2
            index += 2
            continue
        print(f"repro bench-churn: unknown argument {arg!r}", file=sys.stderr)
        print(usage, file=sys.stderr)
        return 2
    started = time.perf_counter()
    try:
        report = run_churn(seed=seed, ops=ops)
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(
            f"repro bench-churn: run failed: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return 1
    elapsed = time.perf_counter() - started
    rendered = json.dumps(report, indent=2, sort_keys=True)
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    if as_json:
        print(rendered)
    else:
        mix = report["mix"]
        print(
            f"bench-churn seed={seed} ops={ops} "
            f"(delegate {mix['delegate']}, revoke {mix['revoke']}, "
            f"authorize {mix['authorize']}, advance {mix['advance']}) "
            f"wall {elapsed:.2f}s"
        )
        for name in ("full", "incremental"):
            arm = report["arms"][name]
            pr = arm["post_revoke"]
            print(
                f"  {name:>11}: work {arm['work_units']:>6}  "
                f"grants {arm['grants']}  denials {arm['denials']}  "
                f"post-revoke {pr['count']} queries / {pr['work_units']} work "
                f"= {pr['throughput_per_kwork']:.1f} per kwork"
            )
        print(
            f"  speedup: authorize-after-revoke "
            f"{report['speedup']['authorize_after_revoke']:.2f}x  "
            f"overall work {report['speedup']['overall_work']:.2f}x  "
            f"transcripts match: {'yes' if report['transcripts_match'] else 'NO'}  "
            f"oracle agrees: {'yes' if report['oracle_agrees'] else 'NO'}"
        )
    return 0 if report["transcripts_match"] and report["oracle_agrees"] else 1


def run_bench_recovery(argv: list[str] | None = None) -> int:
    """The ``repro bench-recovery`` subcommand.

    Replays one seeded crash/restart schedule through the crashy and
    control arms (:mod:`repro.load.recovery`) and prints the recovery
    cost plus the gate verdicts.  ``--mutate skip-catchup`` breaks the
    delta catch-up on purpose to demonstrate detection.  Identical
    seeds produce byte-identical ``--json`` output; exit status is
    non-zero when any gate fails.
    """
    from .load import run_bench_recovery as run_recovery

    argv = list(argv or [])
    usage = (
        "usage: python -m repro bench-recovery [--seed N] [--ops K]"
        " [--crashes C] [--mutate NAME] [--json] [--out PATH]"
    )
    seed, ops, crashes = 7, 360, 4
    mutation: str | None = None
    as_json = False
    out_path: str | None = None
    index = 0
    while index < len(argv):
        arg = argv[index]
        if arg == "--json":
            as_json = True
            index += 1
            continue
        if arg in ("--seed", "--ops", "--crashes", "--mutate", "--out"):
            if index + 1 >= len(argv):
                print(f"repro bench-recovery: {arg} needs a value", file=sys.stderr)
                print(usage, file=sys.stderr)
                return 2
            value = argv[index + 1]
            try:
                if arg == "--seed":
                    seed = int(value)
                elif arg == "--ops":
                    ops = int(value)
                elif arg == "--crashes":
                    crashes = int(value)
                elif arg == "--mutate":
                    mutation = value
                else:
                    out_path = value
            except ValueError:
                print(
                    f"repro bench-recovery: bad value for {arg}: {value!r}",
                    file=sys.stderr,
                )
                return 2
            index += 2
            continue
        print(f"repro bench-recovery: unknown argument {arg!r}", file=sys.stderr)
        print(usage, file=sys.stderr)
        return 2
    started = time.perf_counter()
    try:
        report = run_recovery(seed=seed, ops=ops, crashes=crashes, mutation=mutation)
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(
            f"repro bench-recovery: run failed: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return 1
    elapsed = time.perf_counter() - started
    rendered = json.dumps(report, indent=2, sort_keys=True)
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    if as_json:
        print(rendered)
    else:
        mix, rec, verdicts = report["mix"], report["recovery"], report["verdicts"]
        print(
            f"bench-recovery seed={seed} ops={ops} crashes={crashes} "
            f"(delegate {mix['delegate']}, revoke {mix['revoke']}, "
            f"authorize {mix['authorize']}, advance {mix['advance']}) "
            f"wall {elapsed:.2f}s"
        )
        for n, r in enumerate(report["recoveries"]):
            print(
                f"  restart {n}: replayed {r['wal_records_replayed']:>3} wal "
                f"records (snapshot {r['snapshot_creds']} creds, "
                f"{r['torn_bytes']} torn bytes), caught up "
                f"{r['catchup_updates']} updates, cache kept "
                f"{r['cache_kept']}/evicted {r['cache_evicted']} = "
                f"{r['work_units']} work units"
            )
        print(
            f"  verdicts: {verdicts['checked']} checked, "
            f"{verdicts['grants']} grants, {verdicts['denials']} denials  "
            f"total recovery work {rec['work_units']}"
        )
        for gate in ("verdicts_match", "oracle_agrees", "digests_match"):
            print(f"  [{'PASS' if report[gate] else 'FAIL'}] {gate}")
    return 0 if report["ok"] else 1


def run_bench_overload(argv: list[str] | None = None) -> int:
    """The ``repro bench-overload`` subcommand.

    Drives :class:`repro.load.overload.OverloadBench` — 1x/3x/10x offered
    load, each with and without flow control — and prints the goodput
    comparison plus the invariant verdicts.  Identical seeds produce
    byte-identical ``--json`` output; exit status is non-zero when an
    overload invariant is violated.
    """
    from .load import run_bench_overload as run_overload

    argv = list(argv or [])
    usage = (
        "usage: python -m repro bench-overload [--seed N] [--clients C]"
        " [--duration S] [--json] [--out PATH]"
    )
    seed, clients, duration = 7, 4, 1.5
    as_json = False
    out_path: str | None = None
    index = 0
    while index < len(argv):
        arg = argv[index]
        if arg == "--json":
            as_json = True
            index += 1
            continue
        if arg in ("--seed", "--clients", "--duration", "--out"):
            if index + 1 >= len(argv):
                print(f"repro bench-overload: {arg} needs a value", file=sys.stderr)
                print(usage, file=sys.stderr)
                return 2
            value = argv[index + 1]
            try:
                if arg == "--seed":
                    seed = int(value)
                elif arg == "--clients":
                    clients = int(value)
                elif arg == "--duration":
                    duration = float(value)
                else:
                    out_path = value
            except ValueError:
                print(
                    f"repro bench-overload: bad value for {arg}: {value!r}",
                    file=sys.stderr,
                )
                return 2
            index += 2
            continue
        print(f"repro bench-overload: unknown argument {arg!r}", file=sys.stderr)
        print(usage, file=sys.stderr)
        return 2
    try:
        report = run_overload(seed=seed, clients=clients, duration_s=duration)
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(
            f"repro bench-overload: run failed: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return 1
    rendered = json.dumps(report, indent=2, sort_keys=True)
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    if as_json:
        print(rendered)
    else:
        print(
            f"bench-overload seed={seed} clients={clients} "
            f"duration={duration}s capacity={report['capacity_rps']:.0f} rps "
            f"slo={report['slo_s'] * 1000:.0f}ms"
        )
        for arm in report["arms"]:
            off, on = arm["without_flow"], arm["with_flow"]
            print(
                f"  {arm['multiplier']:>2}x ({arm['offered_rps']:.0f} rps): "
                f"goodput {off['goodput_rps']:7.1f} -> {on['goodput_rps']:7.1f} rps"
                f"  shed {on['shed']:>4}  p99 {off['latency_s']['p99'] * 1000:8.1f}"
                f" -> {on['latency_s']['p99'] * 1000:6.1f} ms"
            )
        verdicts = report["invariants"]
        for name, passed in verdicts.items():
            if name == "ok":
                continue
            print(f"  [{'PASS' if passed else 'FAIL'}] {name}")
    return 0 if report["invariants"]["ok"] else 1


def run_simtest(argv: list[str] | None = None) -> int:
    """The ``repro simtest`` subcommand.

    Generates (or ``--replay``s) a trace, runs it through the simulation
    checker, and — when the oracles and the stack disagree — shrinks the
    trace and writes the minimal repro to ``--out`` (default
    ``simtest-repro.json``).  Exit status 0 means no divergence.
    """
    from .check import SimTester, Trace, generate_trace, shrink_trace

    argv = list(argv or [])
    usage = (
        "usage: python -m repro simtest [--seed N] [--steps S] [--chaos]"
        " [--engine incr|full] [--mutate NAME] [--replay FILE] [--out PATH]"
        " [--json]"
    )
    seed, steps = 7, 500
    chaos = as_json = False
    mutation: str | None = None
    replay_path: str | None = None
    engine = "incr"
    out_path = "simtest-repro.json"
    index = 0
    while index < len(argv):
        arg = argv[index]
        if arg == "--json":
            as_json = True
            index += 1
            continue
        if arg == "--chaos":
            chaos = True
            index += 1
            continue
        if arg in ("--seed", "--steps", "--engine", "--mutate", "--replay", "--out"):
            if index + 1 >= len(argv):
                print(f"repro simtest: {arg} needs a value", file=sys.stderr)
                print(usage, file=sys.stderr)
                return 2
            value = argv[index + 1]
            try:
                if arg == "--seed":
                    seed = int(value)
                elif arg == "--steps":
                    steps = int(value)
                elif arg == "--engine":
                    if value not in ("incr", "full"):
                        print(
                            f"repro simtest: --engine must be incr or full,"
                            f" got {value!r}",
                            file=sys.stderr,
                        )
                        return 2
                    engine = value
                elif arg == "--mutate":
                    mutation = value
                elif arg == "--replay":
                    replay_path = value
                else:
                    out_path = value
            except ValueError:
                print(
                    f"repro simtest: bad value for {arg}: {value!r}",
                    file=sys.stderr,
                )
                return 2
            index += 2
            continue
        print(f"repro simtest: unknown argument {arg!r}", file=sys.stderr)
        print(usage, file=sys.stderr)
        return 2
    try:
        if replay_path is not None:
            with open(replay_path, encoding="utf-8") as handle:
                trace = Trace.from_json(handle.read())
        else:
            trace = generate_trace(seed=seed, steps=steps, chaos=chaos)
        tester = SimTester(mutation=mutation, engine=engine)
        report = tester.run(trace)
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(
            f"repro simtest: run failed: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return 1
    if as_json:
        print(report.to_json(indent=2))
    else:
        print(report.summary())
    if report.ok:
        return 0
    result = shrink_trace(trace, tester)
    if not as_json:
        print(result.summary())
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(result.trace.to_json() + "\n")
    print(f"repro simtest: minimal repro written to {out_path}", file=sys.stderr)
    if report.flight is not None:
        # The flight recorder froze the last events + live spans at the
        # moment the oracles diverged; park the dump next to the repro.
        stem = out_path[:-5] if out_path.endswith(".json") else out_path
        flight_path = f"{stem}-flight.json"
        with open(flight_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(report.flight, indent=2, sort_keys=True) + "\n")
        print(
            f"repro simtest: flight-recorder dump written to {flight_path}",
            file=sys.stderr,
        )
    return 1


def run_trace(argv: list[str] | None = None) -> int:
    """The ``repro trace`` subcommand."""
    from .obs.dist import run_trace as build_trace

    argv = list(argv or [])
    usage = "usage: python -m repro trace [--seed N] [--chaos] [--out F]"
    seed = 7
    chaos = False
    out_path: str | None = None
    index = 0
    while index < len(argv):
        arg = argv[index]
        if arg == "--chaos":
            chaos = True
            index += 1
            continue
        if arg in ("--seed", "--out"):
            if index + 1 >= len(argv):
                print(f"repro trace: {arg} needs a value", file=sys.stderr)
                print(usage, file=sys.stderr)
                return 2
            value = argv[index + 1]
            try:
                if arg == "--seed":
                    seed = int(value)
                else:
                    out_path = value
            except ValueError:
                print(f"repro trace: bad value for {arg}: {value!r}", file=sys.stderr)
                return 2
            index += 2
            continue
        print(f"repro trace: unknown argument {arg!r}", file=sys.stderr)
        print(usage, file=sys.stderr)
        return 2
    try:
        trace = build_trace(seed, chaos=chaos)
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"repro trace: run failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    rendered = json.dumps(trace, indent=2, sort_keys=True)
    if out_path is None:
        print(rendered)
        return 0
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(rendered + "\n")
    other = trace.get("otherData", {})
    spans = sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
    instants = sum(1 for e in trace["traceEvents"] if e.get("ph") == "i")
    print(
        f"repro trace seed={seed} chaos={'yes' if chaos else 'no'}: "
        f"{spans} spans, {instants} events, "
        f"{other.get('retries', 0)} retries, "
        f"{other.get('frames_lost', 0)} frames lost, "
        f"makespan {other.get('virtual_makespan_s', 0.0):.4f}s"
    )
    print(f"written to {out_path} (load at https://ui.perfetto.dev)")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "stats":
        return run_stats(argv[1:])
    if argv and argv[0] == "chaos":
        return run_chaos(argv[1:])
    if argv and argv[0] == "bench-load":
        return run_bench_load(argv[1:])
    if argv and argv[0] == "bench-overload":
        return run_bench_overload(argv[1:])
    if argv and argv[0] == "bench-churn":
        return run_bench_churn(argv[1:])
    if argv and argv[0] == "bench-recovery":
        return run_bench_recovery(argv[1:])
    if argv and argv[0] == "simtest":
        return run_simtest(argv[1:])
    if argv and argv[0] == "trace":
        return run_trace(argv[1:])
    key_bits = 512
    if argv and argv[0] == "--full-keys":
        key_bits = 1024
    elif argv:
        print(f"repro: unknown command {argv[0]!r}", file=sys.stderr)
        print(
            "usage: python -m repro [--full-keys] | stats [--json] [--full-keys]"
            " | chaos [--seed N] [--duration S] [--json]"
            " | bench-load [--seed N] [--clients C] [--json]"
            " | bench-overload [--seed N] [--clients C] [--json]"
            " | bench-churn [--seed N] [--ops K] [--json]"
            " | bench-recovery [--seed N] [--ops K] [--crashes C] [--json]"
            " | simtest [--seed N] [--steps S] [--chaos] [--engine incr|full]"
            " [--json]"
            " | trace [--seed N] [--chaos] [--out F]",
            file=sys.stderr,
        )
        return 2
    print("repro self-check: Using Views for Customizing Reusable Components (HPDC 2003)")
    return 1 if run_selfcheck(key_bits=key_bits) else 0


if __name__ == "__main__":
    raise SystemExit(main())
