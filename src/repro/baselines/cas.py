"""CAS-style baseline: community authorization (§5, related work).

"CAS (Community Authorization Service) divides the users into communities
such that all providers know about communities only.  In this way, CAS
improves the memory storage to C x (P + U), where C is the number of
communities."

Each community server stores one membership record per user in the
community, and each provider stores one policy record per community it
serves — so total records sum to C·P (provider side) + C·U-ish
(community side) = C x (P + U) when communities overlap fully, matching
the paper's accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CasCommunity:
    """A community server: membership roster + capability issuing."""

    name: str
    members: set[str] = field(default_factory=set)

    def enroll(self, user: str) -> None:
        self.members.add(user)

    def issue_capability(self, user: str) -> str | None:
        """The CAS proxy credential a member presents to providers."""
        if user not in self.members:
            return None
        return f"cas:{self.name}:{user}"

    @property
    def record_count(self) -> int:
        return len(self.members)


class CasProvider:
    """A provider trusting community-level policy records only."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._trusted_communities: set[str] = set()

    def trust_community(self, community: str) -> None:
        self._trusted_communities.add(community)

    def authorize(self, capability: str | None) -> bool:
        if not capability or not capability.startswith("cas:"):
            return False
        _, community, _user = capability.split(":", 2)
        return community in self._trusted_communities

    @property
    def record_count(self) -> int:
        return len(self._trusted_communities)


class CasDeployment:
    """A CAS federation: C communities mediating P providers and U users."""

    def __init__(self) -> None:
        self.communities: dict[str, CasCommunity] = {}
        self.providers: dict[str, CasProvider] = {}

    def add_community(self, name: str) -> CasCommunity:
        community = CasCommunity(name)
        self.communities[name] = community
        return community

    def add_provider(self, name: str, *, trusts: list[str] | None = None) -> CasProvider:
        provider = CasProvider(name)
        self.providers[name] = provider
        for community in trusts if trusts is not None else list(self.communities):
            provider.trust_community(community)
        return provider

    def enroll_user(self, user: str, communities: list[str] | None = None) -> None:
        for name in communities if communities is not None else list(self.communities):
            self.communities[name].enroll(user)

    def authorize(self, provider: str, community: str, user: str) -> bool:
        capability = self.communities[community].issue_capability(user)
        return self.providers[provider].authorize(capability)

    @property
    def total_records(self) -> int:
        """Sums to C x (P + U) when all providers trust all communities
        and all users join all communities."""
        return sum(c.record_count for c in self.communities.values()) + sum(
            p.record_count for p in self.providers.values()
        )
