"""Per-call access-control baseline (§4.2, §5).

The contrast class for the views/Switchboard single-sign-on claim: systems
like Legion require every object to "implement a special function, MayI,
that is called to check credentials every time a user invokes a method on
the object".  :class:`PerCallGuardedService` wraps a target object so that
*every* method invocation re-runs a full dRBAC proof search — the cost the
E-SSO experiment compares against authorize-once views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from ..drbac.delegation import Delegation
from ..drbac.engine import DrbacEngine
from ..drbac.model import EntityRef, Role
from ..errors import AuthorizationError


@dataclass
class PerCallStats:
    calls: int = 0
    proofs_run: int = 0
    denials: int = 0


class PerCallGuardedService:
    """Legion-``MayI``-style wrapper: authorize on every invocation."""

    def __init__(
        self,
        target: Any,
        engine: DrbacEngine,
        required_role: Role | str,
        *,
        method_roles: dict[str, Role | str] | None = None,
    ) -> None:
        self._target = target
        self._engine = engine
        self._required_role = (
            Role.parse(required_role) if isinstance(required_role, str) else required_role
        )
        self._method_roles = {
            name: Role.parse(role) if isinstance(role, str) else role
            for name, role in (method_roles or {}).items()
        }
        self.stats = PerCallStats()

    def may_i(
        self,
        client: str,
        method: str,
        credentials: Iterable[Delegation] | None = None,
    ) -> bool:
        """The per-invocation check (Legion's MayI)."""
        role = self._method_roles.get(method, self._required_role)
        self.stats.proofs_run += 1
        pool = list(credentials) if credentials is not None else None
        if pool is None:
            pool = self._engine.repository.collect(EntityRef(client), role)
        else:
            harvested = self._engine.repository.collect(EntityRef(client), role)
            merged = {c.credential_id: c for c in harvested}
            for cred in pool:
                merged[cred.credential_id] = cred
            pool = list(merged.values())
        proof = self._engine.find_proof(EntityRef(client), role, pool)
        return proof is not None

    def invoke(
        self,
        client: str,
        method: str,
        args: list | None = None,
        credentials: Iterable[Delegation] | None = None,
    ) -> Any:
        """Check, then call — paying the proof search on every request."""
        self.stats.calls += 1
        credentials = list(credentials) if credentials is not None else None
        if not self.may_i(client, method, credentials):
            self.stats.denials += 1
            raise AuthorizationError(
                f"client {client!r} denied for method {method!r}"
            )
        fn = getattr(self._target, method)
        return fn(*(args or []))
