"""GSI-style baseline: gridmap authorization (§5, related work).

"In GSI, all resource providers (P) have the necessary authentication/
authorization information for all possible users (U), thus implying a
storage space proportional with P x U."

Each provider keeps a *gridmap*: one record per user it will serve,
translating the system-wide grid credential into a local account.  The
model below counts exactly those records so the E-STORE experiment can
reproduce the P x U scaling claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class GridmapEntry:
    """One gridmap line: grid DN -> local account."""

    user: str
    local_account: str


class GsiProvider:
    """A resource provider holding a full per-user gridmap."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._gridmap: dict[str, GridmapEntry] = {}

    def enroll_user(self, user: str) -> None:
        """Record the grid→local translation for one user."""
        self._gridmap[user] = GridmapEntry(
            user=user, local_account=f"{self.name}:{user}"
        )

    def authorize(self, user: str) -> bool:
        """Authorization = gridmap membership (coarse, per-account)."""
        return user in self._gridmap

    @property
    def record_count(self) -> int:
        return len(self._gridmap)


class GsiDeployment:
    """A whole GSI federation: P providers x U users."""

    def __init__(self) -> None:
        self.providers: dict[str, GsiProvider] = {}
        self.users: set[str] = set()

    def add_provider(self, name: str) -> GsiProvider:
        provider = GsiProvider(name)
        self.providers[name] = provider
        return provider

    def add_user(self, user: str) -> None:
        """Every provider must learn about every user (the P x U cost)."""
        self.users.add(user)
        for provider in self.providers.values():
            provider.enroll_user(user)

    def sync(self) -> None:
        """Backfill providers added after users (keeps P x U invariant)."""
        for provider in self.providers.values():
            for user in self.users:
                provider.enroll_user(user)

    def authorize(self, provider: str, user: str) -> bool:
        return self.providers[provider].authorize(user)

    @property
    def total_records(self) -> int:
        """The storage figure the paper compares: sums to P x U."""
        return sum(p.record_count for p in self.providers.values())
