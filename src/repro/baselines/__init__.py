"""Comparator baselines for the paper's quantitative claims (§5).

* :mod:`repro.baselines.gsi` — gridmap authorization, storage P x U.
* :mod:`repro.baselines.cas` — community authorization, storage C x (P+U).
* :mod:`repro.baselines.acl_per_call` — Legion-MayI per-call checking, the
  foil for single-sign-on views.
"""

from .acl_per_call import PerCallGuardedService, PerCallStats
from .cas import CasCommunity, CasDeployment, CasProvider
from .gsi import GridmapEntry, GsiDeployment, GsiProvider

__all__ = [
    "CasCommunity",
    "CasDeployment",
    "CasProvider",
    "GridmapEntry",
    "GsiDeployment",
    "GsiProvider",
    "PerCallGuardedService",
    "PerCallStats",
]
