"""Automatic view inference from programmer hints (§6 future work).

"VIG is designed to create views based on a set of simple rules and the
original object. ... In the future, we plan to fully automate the process
of creating views based on a few hints from the programmer."

:func:`infer_view_spec` implements that plan: given the represented class,
the registered interfaces, and a *hint* — which methods the view's users
may call, and which interfaces must stay on the original object — it
synthesizes a complete :class:`~repro.views.spec.ViewSpec`:

* interfaces whose methods are all allowed become **local** (full copies);
* interfaces listed in ``remote`` (or containing a state-*writing* method
  when ``prefer_remote_writes`` is set) route to the original over
  **switchboard** (or ``rmi`` on request);
* partially-allowed interfaces are included with the denied methods
  customized to raise ``PermissionError`` — method-granularity access
  control without hand-written XML;
* replicated fields fall out of VIG's own reference analysis, so the hint
  needs nothing about state.
"""

from __future__ import annotations

import dis
from dataclasses import dataclass, field
from typing import Iterable

from ..errors import ViewSpecError
from .interfaces import InterfaceDef, InterfaceRegistry
from .spec import (
    InterfaceMode,
    InterfaceRestriction,
    MethodSpec,
    ViewSpec,
)
from .vig import represented_fields, represented_methods


@dataclass(slots=True)
class ViewHint:
    """The 'few hints from the programmer'."""

    allow: frozenset[str]
    """Method names the view's clients may invoke."""
    remote: frozenset[str] = frozenset()
    """Interface names that must execute on the original object."""
    remote_mode: InterfaceMode = InterfaceMode.SWITCHBOARD
    deny_message: str = "method {name} is not available in this view"

    def __init__(
        self,
        allow: Iterable[str],
        *,
        remote: Iterable[str] = (),
        remote_mode: InterfaceMode = InterfaceMode.SWITCHBOARD,
        deny_message: str | None = None,
    ) -> None:
        object.__setattr__(self, "allow", frozenset(allow))
        object.__setattr__(self, "remote", frozenset(remote))
        object.__setattr__(self, "remote_mode", remote_mode)
        if deny_message is not None:
            object.__setattr__(self, "deny_message", deny_message)
        else:
            object.__setattr__(
                self, "deny_message", "method {name} is not available in this view"
            )


_MUTATOR_NAMES = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "add",
        "discard", "update", "setdefault", "popitem", "sort", "reverse",
    }
)


def method_writes_state(fn) -> bool:
    """Heuristic: does the method mutate ``self`` state?

    Detects both direct stores (``self.x = ...``, ``self.x[k] = ...``) and
    mutating container calls (``self.x.append(...)`` and friends) via a
    three-instruction bytecode window.
    """
    code = getattr(fn, "__code__", None)
    if code is None:
        return False
    arg_names = code.co_varnames[: code.co_argcount]
    self_name = arg_names[0] if arg_names else "self"
    window: list = [None, None]
    for instr in dis.get_instructions(code):
        prev2, prev = window
        self_attr_loaded = (
            prev2 is not None
            and prev2.opname == "LOAD_FAST"
            and prev2.argval == self_name
            and prev is not None
            and prev.opname == "LOAD_ATTR"
        )
        if (
            prev is not None
            and prev.opname == "LOAD_FAST"
            and prev.argval == self_name
            and instr.opname == "STORE_ATTR"
        ):
            return True
        if self_attr_loaded and instr.opname in ("LOAD_METHOD", "LOAD_ATTR"):
            if instr.argval in _MUTATOR_NAMES:
                return True
        if self_attr_loaded and instr.opname == "STORE_SUBSCR":
            return True
        window = [prev, instr]
    return False


def infer_view_spec(
    name: str,
    represented: type,
    registry: InterfaceRegistry,
    hint: ViewHint,
    *,
    interfaces: Iterable[str] | None = None,
    prefer_remote_writes: bool = False,
) -> ViewSpec:
    """Synthesize a complete view spec from a hint.

    Args:
        name: view class name.
        represented: the original object's class.
        registry: interface registry; ``interfaces`` defaults to every
            registered interface fully implemented by ``represented``.
        hint: the allowed-method / remote-interface hint.
        prefer_remote_writes: when True, interfaces containing any
            state-writing method are routed remotely even without an
            explicit ``remote`` hint (a conservative data-placement
            policy for untrusted client machines).

    Raises:
        ViewSpecError: if the hint allows a method no registered interface
            declares, or names an unknown remote interface.
    """
    methods = represented_methods(represented)
    candidate_names = list(interfaces) if interfaces is not None else registry.names()
    candidates: list[InterfaceDef] = []
    for iface_name in candidate_names:
        iface = registry.get(iface_name)
        if all(sig.name in methods for sig in iface.methods):
            candidates.append(iface)

    declared = {
        sig.name for iface in candidates for sig in iface.methods
    }
    unknown_allowed = hint.allow - declared
    if unknown_allowed:
        raise ViewSpecError(
            f"hint allows {sorted(unknown_allowed)}, but no registered "
            f"interface of {represented.__name__} declares them"
        )
    unknown_remote = hint.remote - {iface.name for iface in candidates}
    if unknown_remote:
        raise ViewSpecError(
            f"hint marks {sorted(unknown_remote)} remote, but they are not "
            f"interfaces of {represented.__name__}"
        )

    restrictions: list[InterfaceRestriction] = []
    denials: list[MethodSpec] = []
    for iface in candidates:
        iface_methods = set(iface.method_names())
        allowed = iface_methods & hint.allow
        if not allowed:
            continue  # interface entirely absent from the view
        remote = iface.name in hint.remote
        if not remote and prefer_remote_writes:
            remote = any(
                method_writes_state(methods[sig.name]) for sig in iface.methods
            )
        mode = hint.remote_mode if remote else InterfaceMode.LOCAL
        restrictions.append(
            InterfaceRestriction(name=iface.name, mode=mode, binding=iface.name)
        )
        for denied in sorted(iface_methods - hint.allow):
            sig = iface.method(denied)
            message = hint.deny_message.format(name=denied)
            denials.append(
                MethodSpec(
                    name=denied,
                    params=sig.params,
                    body=f"raise PermissionError({message!r})",
                )
            )

    if not restrictions:
        raise ViewSpecError(
            f"hint for {name} admits no interface of {represented.__name__}"
        )

    return ViewSpec(
        name=name,
        represents=represented.__name__,
        interfaces=tuple(restrictions),
        customized_methods=tuple(denials),
    )
