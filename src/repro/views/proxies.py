"""Remote stubs and the runtime context handed to generated views.

Table 5's generated constructor performs ``Naming.lookup(...)`` for rmi
interfaces and ``Switchboard.lookup(...)`` for switchboard interfaces; the
:class:`ViewRuntime` is the Python analogue — it owns the naming registry
and the node's RPC/Switchboard endpoints, and hands back method-forwarding
stubs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import SwitchboardError, ViewError
from ..switchboard.authorizer import AuthorizationSuite
from ..switchboard.channel import SwitchboardConnection, SwitchboardEndpoint
from ..switchboard.registry import NamingRegistry, ServiceAddress
from ..switchboard.rpc import PlainRpcEndpoint
from .coherence import LocalOrigin, OriginPort

IMAGE_BINDING_PREFIX = "image:"
"""Naming-registry prefix for a represented object's ImageService."""


class RmiStub:
    """Plaintext remote proxy (the Java RMI stand-in).

    Attribute access returns a synchronous forwarding callable; every call
    crosses the network unencrypted.
    """

    def __init__(self, endpoint: PlainRpcEndpoint, address: ServiceAddress) -> None:
        self._endpoint = endpoint
        self._address = address

    def __getattr__(self, method: str):
        if method.startswith("_"):
            raise AttributeError(method)
        endpoint, address = self._endpoint, self._address

        def remote_call(*args):
            return endpoint.call_sync(address.node, address.target, method, list(args))

        remote_call.__name__ = method
        return remote_call


class SwitchboardStub:
    """Secure remote proxy over an established Switchboard connection.

    The connection was authorized once at establishment; calls flow with
    no further access checks (single sign-on, §4.2).
    """

    def __init__(self, connection: SwitchboardConnection, target: str) -> None:
        self._connection = connection
        self._target = target

    @property
    def connection(self) -> SwitchboardConnection:
        return self._connection

    def __getattr__(self, method: str):
        if method.startswith("_"):
            raise AttributeError(method)
        connection, target = self._connection, self._target

        def remote_call(*args):
            return connection.call_sync(target, method, list(args))

        remote_call.__name__ = method
        return remote_call


@dataclass
class ViewRuntime:
    """Everything a generated view needs to reach its original object.

    ``local_objects`` provides same-process originals for *local*-mode
    data access; remote interfaces resolve through the naming registry to
    rmi or switchboard stubs.  A runtime without endpoints supports purely
    local views (and raises clearly when a spec demands remote access).
    """

    naming: NamingRegistry = field(default_factory=NamingRegistry)
    rpc: Optional[PlainRpcEndpoint] = None
    switchboard: Optional[SwitchboardEndpoint] = None
    suite: Optional[AuthorizationSuite] = None
    local_objects: dict[str, Any] = field(default_factory=dict)
    binding_modes: dict[str, str] = field(default_factory=dict)
    """Per-binding channel mode ("rmi" | "switchboard") decided by the
    planner; bindings absent here fall back to preferring Switchboard."""
    _connections: dict[str, SwitchboardConnection] = field(default_factory=dict)

    def local_object(self, name: str) -> Any:
        obj = self.local_objects.get(name)
        if obj is None:
            raise ViewError(f"no local object registered under {name!r}")
        return obj

    def rmi_stub(self, binding: str) -> RmiStub:
        if self.rpc is None:
            raise ViewError(
                f"view requires rmi binding {binding!r} but the runtime has no RPC endpoint"
            )
        return RmiStub(self.rpc, self.naming.lookup(binding))

    def switchboard_stub(self, binding: str) -> SwitchboardStub:
        """Resolve a binding to a stub over a (cached) secure channel.

        One channel per remote service address is reused by every
        interface bound to it — the authorization happened at connect
        time, so sharing the channel preserves single sign-on semantics.
        """
        if self.switchboard is None or self.suite is None:
            raise ViewError(
                f"view requires switchboard binding {binding!r} but the runtime "
                "has no switchboard endpoint / authorization suite"
            )
        address = self.naming.lookup(binding)
        cache_key = f"{address.node}|{address.service}"
        connection = self._connections.get(cache_key)
        if connection is None or connection.state.value != "open":
            pending = self.switchboard.connect(address.node, address.service, self.suite)
            connection = pending.wait()
            self._connections[cache_key] = connection
        return SwitchboardStub(connection, address.target)

    def origin_port(self, represents: str) -> Optional[OriginPort]:
        """Resolve the image port for a represented object.

        Local objects win; otherwise the convention ``image:<name>`` in
        the naming registry locates the exported
        :class:`~repro.views.coherence.ImageService`, reached over
        Switchboard when a suite is available, else plain RMI.  Returns
        ``None`` when the original object is unreachable.
        """
        if represents in self.local_objects:
            return LocalOrigin(self.local_objects[represents])
        binding = IMAGE_BINDING_PREFIX + represents
        if binding not in self.naming:
            return None
        mode = self.binding_modes.get(binding)
        if mode == "rmi" and self.rpc is not None:
            # The planner judged the path safe for a bulk channel
            # (secure links or encrypted payload); don't pay for a
            # Switchboard handshake it didn't ask for.
            return self.rmi_stub(binding)  # type: ignore[return-value]
        if self.switchboard is not None and self.suite is not None:
            return self.switchboard_stub(binding)  # type: ignore[return-value]
        if self.rpc is not None:
            return self.rmi_stub(binding)  # type: ignore[return-value]
        return None

    def close(self) -> None:
        for connection in self._connections.values():
            try:
                connection.close()
            except SwitchboardError:
                pass
        self._connections.clear()
