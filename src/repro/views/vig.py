"""VIG — the View Generator (Section 4.3).

"The view generation is handled by a tool called VIG, which takes the
class file of the represented object and an XML definition of the view and
produces a new classfile corresponding to the view."

The Java original rewrites bytecode with Javassist; this reproduction
synthesizes a Python class.  The observable contract is preserved:

* **Interfaces** — *local* interfaces have their method implementations
  copied from the represented class; *rmi* and *switchboard* interfaces
  become forwarders against the original object through the corresponding
  stub (Table 5's ``notesI_rmi.addNote()`` / ``addrI_switch.getPhone()``).
* **Methods** — added and customized method bodies are compiled from the
  spec's (Python) source.  Copied methods pull in the private helper
  methods they call (the paper follows the Java inheritance chain for the
  same reason) and the represented fields they touch, which are
  auto-enrolled in the replicated-field set ("VIG parses the method code
  and copies the declarations of all used class fields").
* **Validation** — a method body referencing a name defined neither on the
  original object nor in the view triggers
  :class:`~repro.errors.ViewGenerationError` naming the offender, so VIG
  "can be used to both generate views at runtime and guide the
  programmer's effort to write correct XML files".
* **Coherence** — ``acquireImage``/``releaseImage`` bracket every method
  the view implements locally; the four image methods come from the spec
  or are synthesized from the replicated-field set (the paper's planned
  "default handlers", implemented here).
* **Inheritance** — when copied methods come from base classes of the
  represented class, VIG emits a parallel shadow-class chain so the
  view hierarchy mirrors the represented ``extends`` hierarchy.
* **Deferral & caching** — generation happens on first deployment and is
  cached by spec digest, keeping "management costs proportional to their
  utility".
"""

from __future__ import annotations

import ast
import dis
import functools
import textwrap
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import ViewGenerationError, ViewSpecError
from .coherence import CacheManager, CoherencePolicy
from .interfaces import InterfaceDef, InterfaceRegistry, MethodSig
from .proxies import ViewRuntime
from .spec import (
    COHERENCE_METHODS,
    InterfaceMode,
    InterfaceRestriction,
    MethodSpec,
    ViewSpec,
)

_RUNTIME_ATTRS = {
    "_runtime",
    "_cache_manager",
    "_origin",
    "_replicated_fields",
    "properties",
}


# --------------------------------------------------------------------------
# Introspection helpers
# --------------------------------------------------------------------------

def self_attribute_refs(fn: Callable) -> set[str]:
    """Names accessed as ``self.<name>`` inside a compiled function."""
    refs: set[str] = set()
    code = getattr(fn, "__code__", None)
    if code is None:
        return refs
    arg_names = code.co_varnames[: code.co_argcount]
    self_name = arg_names[0] if arg_names else "self"
    prev = None
    for instr in dis.get_instructions(code):
        if (
            prev is not None
            and prev.opname == "LOAD_FAST"
            and prev.argval == self_name
            and instr.opname in ("LOAD_ATTR", "STORE_ATTR", "DELETE_ATTR", "LOAD_METHOD")
        ):
            refs.add(instr.argval)
        prev = instr
    return refs


def ast_self_attribute_refs(body_source: str) -> set[str]:
    """Names accessed as ``self.<name>`` in spec-supplied Python source."""
    refs: set[str] = set()
    tree = ast.parse(body_source)
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            refs.add(node.attr)
    return refs


def represented_fields(cls: type) -> set[str]:
    """Fields declared by a class hierarchy.

    Combines class-level annotations, non-callable class attributes, and
    ``self.<name> = ...`` stores found in each ``__init__`` along the MRO.
    """
    fields: set[str] = set()
    for klass in reversed(cls.__mro__[:-1]):  # skip object
        fields.update(getattr(klass, "__annotations__", ()))
        for name, value in vars(klass).items():
            if name.startswith("__"):
                continue
            if not callable(value):
                fields.add(name)
        init = vars(klass).get("__init__")
        if callable(init):
            fields.update(_init_stores(init))
    return fields


def _init_stores(init: Callable) -> set[str]:
    stores: set[str] = set()
    code = getattr(init, "__code__", None)
    if code is None:
        return stores
    arg_names = code.co_varnames[: code.co_argcount]
    self_name = arg_names[0] if arg_names else "self"
    prev = None
    for instr in dis.get_instructions(code):
        if (
            prev is not None
            and prev.opname == "LOAD_FAST"
            and prev.argval == self_name
            and instr.opname == "STORE_ATTR"
        ):
            stores.add(instr.argval)
        prev = instr
    return stores


def represented_methods(cls: type) -> dict[str, Callable]:
    """All callable attributes along the MRO, earliest definition wins."""
    methods: dict[str, Callable] = {}
    for klass in cls.__mro__[:-1]:
        for name, value in vars(klass).items():
            if name.startswith("__"):
                continue
            if callable(value) and name not in methods:
                methods[name] = value
    return methods


def defining_class(cls: type, method_name: str) -> type:
    for klass in cls.__mro__[:-1]:
        if method_name in vars(klass):
            return klass
    raise KeyError(method_name)


# --------------------------------------------------------------------------
# Coherence wrapping
# --------------------------------------------------------------------------

def wrap_with_coherence(fn: Callable) -> Callable:
    """Insert acquireImage/releaseImage around a view method."""

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        manager: CacheManager = self._cache_manager
        manager.acquire_image()
        try:
            return fn(self, *args, **kwargs)
        finally:
            manager.release_image()

    wrapper.__coherence_wrapped__ = True  # type: ignore[attr-defined]
    return wrapper


# --------------------------------------------------------------------------
# The generator
# --------------------------------------------------------------------------

@dataclass
class VigStats:
    generated: int = 0
    cache_hits: int = 0
    methods_copied: int = 0
    methods_forwarded: int = 0
    methods_compiled: int = 0
    helpers_copied: int = 0
    fields_auto_replicated: int = 0


@dataclass
class _Generation:
    """Mutable state for one generation pass."""

    spec: ViewSpec
    represented: type
    rep_fields: set[str]
    rep_methods: dict[str, Callable]
    replicated: set[str] = field(default_factory=set)
    copied: dict[str, Callable] = field(default_factory=dict)
    forwarders: dict[str, Callable] = field(default_factory=dict)
    compiled: dict[str, Callable] = field(default_factory=dict)
    stub_fields: dict[str, InterfaceRestriction] = field(default_factory=dict)


class Vig:
    """The view generator, with deferred generation and a digest cache."""

    def __init__(self, interface_registry: InterfaceRegistry | None = None) -> None:
        self.interfaces = interface_registry or InterfaceRegistry()
        self.stats = VigStats()
        self._cache: dict[tuple[str, str], type] = {}

    # -- entry points -----------------------------------------------------

    def generate(self, spec: ViewSpec, represented: type) -> type:
        """Produce (or fetch from cache) the view class for ``spec``."""
        key = (spec.digest(), f"{represented.__module__}.{represented.__qualname__}")
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        view_cls = self._build(spec, represented)
        self._cache[key] = view_cls
        self.stats.generated += 1
        return view_cls

    def generate_from_xml(self, xml_text: str, represented: type) -> type:
        return self.generate(ViewSpec.from_xml(xml_text), represented)

    # -- pipeline ----------------------------------------------------------

    def _build(self, spec: ViewSpec, represented: type) -> type:
        gen = _Generation(
            spec=spec,
            represented=represented,
            rep_fields=represented_fields(represented),
            rep_methods=represented_methods(represented),
        )
        gen.replicated.update(spec.replicated_fields)

        # Paper's processing order: (1) interfaces, (2) methods, (3) fields.
        self._process_interfaces(gen)
        for method_name in spec.copied_methods:
            self._copy_or_customize(gen, method_name)
        self._process_spec_methods(gen)
        self._process_fields(gen)
        self._ensure_coherence_methods(gen)
        return self._assemble(gen)

    # (1) interfaces -------------------------------------------------------

    def _process_interfaces(self, gen: _Generation) -> None:
        for restriction in gen.spec.interfaces:
            if restriction.name not in self.interfaces:
                raise ViewGenerationError(
                    f"view {gen.spec.name}: interface {restriction.name!r} is not "
                    f"registered; register it or fix the <Interface name> attribute"
                )
            interface = self.interfaces.get(restriction.name)
            if restriction.mode is InterfaceMode.LOCAL:
                for sig in interface.methods:
                    self._copy_or_customize(gen, sig.name)
            else:
                stub_attr = _stub_attr(restriction)
                gen.stub_fields[stub_attr] = restriction
                for sig in interface.methods:
                    if gen.spec.method_spec(sig.name) is not None:
                        # Customized methods win over forwarding.
                        continue
                    gen.forwarders[sig.name] = _make_forwarder(stub_attr, sig)
                    self.stats.methods_forwarded += 1

    def _copy_or_customize(self, gen: _Generation, method_name: str) -> None:
        if gen.spec.method_spec(method_name) is not None:
            return  # compiled later from the spec body
        if method_name in gen.copied:
            return
        fn = gen.rep_methods.get(method_name)
        if fn is None:
            raise ViewGenerationError(
                f"view {gen.spec.name}: method {method_name!r} is not defined by "
                f"the represented object {gen.represented.__name__}; "
                f"remove it from the interface or customize it in the XML rules"
            )
        gen.copied[method_name] = fn
        self.stats.methods_copied += 1
        self._absorb_references(gen, method_name, self_attribute_refs(fn))

    def _absorb_references(
        self, gen: _Generation, origin_method: str, refs: set[str]
    ) -> None:
        """Copy helper methods and auto-replicate fields a method touches."""
        for ref in sorted(refs):
            if ref in gen.copied or ref in gen.forwarders or ref in gen.stub_fields:
                continue
            if ref in _RUNTIME_ATTRS or ref in COHERENCE_METHODS:
                continue
            if gen.spec.method_spec(ref) is not None:
                continue
            if ref in {f.name for f in gen.spec.added_fields}:
                continue
            if ref in gen.replicated:
                continue
            if ref in gen.rep_methods:
                helper = gen.rep_methods[ref]
                gen.copied[ref] = helper
                self.stats.helpers_copied += 1
                self._absorb_references(gen, ref, self_attribute_refs(helper))
            elif ref in gen.rep_fields:
                gen.replicated.add(ref)
                self.stats.fields_auto_replicated += 1
            else:
                raise ViewGenerationError(
                    f"view {gen.spec.name}: method {origin_method!r} uses "
                    f"self.{ref}, which is defined neither in the original "
                    f"object {gen.represented.__name__} nor in the view; "
                    f"add a <Field name=\"{ref}\"/> or fix the method body"
                )

    # (2) methods ------------------------------------------------------------

    def _process_spec_methods(self, gen: _Generation) -> None:
        for method in gen.spec.customized_methods:
            if method.name not in gen.rep_methods and not any(
                method.name in self.interfaces.get(r.name)
                for r in gen.spec.interfaces
                if r.name in self.interfaces
            ):
                raise ViewGenerationError(
                    f"view {gen.spec.name}: <Customizes_Methods> names "
                    f"{method.name!r}, which the represented object does not "
                    f"define; use <Adds_Methods> for new methods"
                )
            gen.compiled[method.name] = self._compile_method(gen, method)
        for method in gen.spec.added_methods:
            if method.name in gen.rep_methods and method.name not in COHERENCE_METHODS:
                raise ViewGenerationError(
                    f"view {gen.spec.name}: <Adds_Methods> redefines "
                    f"{method.name!r}, which already exists on the represented "
                    f"object; use <Customizes_Methods> instead"
                )
            gen.compiled[method.name] = self._compile_method(gen, method)

    def _compile_method(self, gen: _Generation, method: MethodSpec) -> Callable:
        body = method.body.strip() or "pass"
        params = ", ".join(("self",) + method.params)
        source = f"def {method.name}({params}):\n" + textwrap.indent(
            textwrap.dedent(body), "    "
        )
        try:
            refs = ast_self_attribute_refs(textwrap.dedent(body))
        except SyntaxError as exc:
            raise ViewGenerationError(
                f"view {gen.spec.name}: body of {method.name!r} is not valid "
                f"Python (line {exc.lineno}: {exc.msg}); rectify the XML rules"
            ) from exc
        self._absorb_references(gen, method.name, refs)
        namespace: dict[str, Any] = {}
        try:
            exec(compile(source, f"<vig:{gen.spec.name}.{method.name}>", "exec"), namespace)
        except SyntaxError as exc:  # signature-level syntax issues
            raise ViewGenerationError(
                f"view {gen.spec.name}: cannot compile {method.name!r}: {exc.msg}"
            ) from exc
        self.stats.methods_compiled += 1
        return namespace[method.name]

    # (3) fields ---------------------------------------------------------------

    def _process_fields(self, gen: _Generation) -> None:
        for fld in gen.spec.added_fields:
            if fld.name in gen.rep_fields and fld.name not in gen.replicated:
                # An added field shadowing a represented field is a replica
                # by intent (Table 3b's accountCopy pattern keeps both).
                continue
        overlap = {f.name for f in gen.spec.added_fields} & set(gen.replicated)
        if overlap:
            raise ViewGenerationError(
                f"view {gen.spec.name}: field(s) {sorted(overlap)} appear in both "
                f"<Adds_Fields> and <Replicates_Fields>; pick one"
            )

    # -- coherence -----------------------------------------------------------------

    def _ensure_coherence_methods(self, gen: _Generation) -> None:
        """Synthesize default image handlers when the spec omits them."""
        provided = set(gen.compiled)
        fields = sorted(gen.replicated)

        def extractImageFromView(self):
            return {name: getattr(self, name) for name in self._replicated_fields}

        def mergeImageIntoView(self, image):
            for name, value in image.items():
                setattr(self, name, value)

        def extractImageFromObj(self):
            if self._origin is None:
                return {}
            return self._origin.extract_image(list(self._replicated_fields))

        def mergeImageIntoObj(self, image):
            if self._origin is not None and image:
                self._origin.merge_image(image)

        defaults = {
            "extractImageFromView": extractImageFromView,
            "mergeImageIntoView": mergeImageIntoView,
            "extractImageFromObj": extractImageFromObj,
            "mergeImageIntoObj": mergeImageIntoObj,
        }
        for name, fn in defaults.items():
            if name not in provided:
                fn.__qualname__ = f"{gen.spec.name}.{name}"
                gen.compiled[name] = fn
        gen.replicated = set(fields) | gen.replicated

    # -- assembly ----------------------------------------------------------------------

    def _assemble(self, gen: _Generation) -> type:
        spec = gen.spec
        stub_fields = dict(gen.stub_fields)
        view_interface_names = tuple(r.name for r in spec.interfaces)

        user_init: Optional[Callable] = None
        if spec.constructor_body:
            user_init = self._compile_method(
                gen,
                MethodSpec(
                    name="__user_init__", params=("args",), body=spec.constructor_body
                ),
            )
            gen.compiled.pop("__user_init__", None)

        # Capture after every compilation step: bodies may have auto-
        # replicated additional represented fields.
        replicated = tuple(sorted(gen.replicated))
        added_fields = tuple(f.name for f in spec.added_fields)

        def __init__(
            self,
            runtime: ViewRuntime | None = None,
            *,
            policy: CoherencePolicy = CoherencePolicy.ON_DEMAND,
            properties: dict | None = None,
            args: tuple = (),
        ) -> None:
            self._runtime = runtime or ViewRuntime()
            self.properties = dict(spec.properties)
            self.properties.update(properties or {})
            self._replicated_fields = replicated
            for field_name in added_fields:
                setattr(self, field_name, None)
            # Resolve remote stubs (Table 5: Naming.lookup / Switchboard.lookup).
            for attr, restriction in stub_fields.items():
                binding = restriction.binding or restriction.name
                if restriction.mode is InterfaceMode.RMI:
                    setattr(self, attr, self._runtime.rmi_stub(binding))
                else:
                    setattr(self, attr, self._runtime.switchboard_stub(binding))
            # Reach the original object for images.
            self._origin = self._runtime.origin_port(spec.represents)
            if self._origin is None and replicated:
                from ..errors import ViewError

                raise ViewError(
                    f"view {spec.name} replicates fields {list(replicated)} but "
                    f"the original object {spec.represents!r} is unreachable "
                    f"(no local object and no image:{spec.represents} binding)"
                )
            # Initialize the cache manager (Table 5's CacheManager(properties, name)).
            self._cache_manager = CacheManager(
                self, policy=policy, properties=self.properties
            )
            # Prime replicated state with the original object's image.
            if replicated and self._origin is not None:
                self.mergeImageIntoView(self.extractImageFromObj())
            # User-supplied constructor code runs last.
            if user_init is not None:
                user_init(self, args)

        namespace: dict[str, Any] = {
            "__init__": __init__,
            "__view_spec__": spec,
            "__represents__": gen.represented,
            "__view_interfaces__": view_interface_names,
            "__replicated_fields__": replicated,
        }

        # Copied local methods, wrapped with acquire/release.
        for name, fn in gen.copied.items():
            namespace[name] = wrap_with_coherence(fn)
        # Remote forwarders: unwrapped — the functionality lives in the
        # original object, so the view image is not involved.
        for name, fn in gen.forwarders.items():
            namespace[name] = fn
        # Compiled (added/customized) methods: wrapped, except the image
        # methods themselves, which the CacheManager calls re-entrantly.
        for name, fn in gen.compiled.items():
            if name in COHERENCE_METHODS or name == "__user_init__":
                namespace[name] = fn
            else:
                namespace[name] = wrap_with_coherence(fn)

        bases = self._mirror_bases(gen)
        view_cls = type(spec.name, bases, namespace)
        view_cls.__module__ = "repro.views.generated"
        return view_cls

    def _mirror_bases(self, gen: _Generation) -> tuple[type, ...]:
        """Mirror the represented class's ``extends`` chain with shadows.

        For every proper base class of the represented object that defines
        at least one copied method, an empty shadow class named
        ``View_<Base>`` is emitted, chained in the same order, so that
        ``ViewX.__mro__`` parallels ``X.__mro__`` (the paper generates
        "views for every class in the chain such that the 'extends'
        relationships between views is similar").
        """
        chain: list[type] = []
        for klass in gen.represented.__mro__[1:-1]:  # proper bases, minus object
            if any(
                name in vars(klass)
                for name in gen.copied
            ):
                chain.append(klass)
        base: type = object
        for klass in reversed(chain):
            base = type(f"View_{klass.__name__}", (base,) if base is not object else (), {
                "__module__": "repro.views.generated",
                "__shadows__": klass,
            })
        return (base,) if base is not object else (object,)


def _stub_attr(restriction: InterfaceRestriction) -> str:
    prefix = "_rmi_" if restriction.mode is InterfaceMode.RMI else "_swb_"
    return prefix + restriction.name


def _make_forwarder(stub_attr: str, sig: MethodSig) -> Callable:
    """Build ``def m(self, a, b): return self._stub.m(a, b)`` dynamically
    so the forwarder has the real parameter names (helps introspection)."""
    params = ", ".join(("self",) + sig.params)
    args = ", ".join(sig.params)
    source = (
        f"def {sig.name}({params}):\n"
        f"    return getattr(self.{stub_attr}, {sig.name!r})({args})\n"
    )
    namespace: dict[str, Any] = {}
    exec(compile(source, f"<vig:forwarder:{sig.name}>", "exec"), namespace)
    fn = namespace[sig.name]
    fn.__forwarder__ = stub_attr  # type: ignore[attr-defined]
    return fn
