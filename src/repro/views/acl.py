"""Role → view access-control policy (Table 4).

"Access control lists can be established, per component, which specify the
level of service (the view) associated with a given dRBAC role. ... such
policy can be established using only roles within the local namespace:
cross-domain requests are first translated by dRBAC into local roles
before any access control decisions are made."

Rules are evaluated in declaration order; the first role the client can
prove wins.  The ``others`` rule (role ``None``) is the anonymous default
(Table 4's ``ViewMailClient_Anonymous``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from .. import obs
from ..drbac.delegation import Delegation
from ..drbac.engine import DrbacEngine
from ..drbac.model import Attributes, EntityRef, Role
from ..drbac.proof import Proof


@dataclass(frozen=True, slots=True)
class AccessRule:
    """One Table 4 row: a local role mapped to a view name."""

    role: Optional[Role]
    view_name: str
    required_attributes: Attributes = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.required_attributes is None:
            object.__setattr__(self, "required_attributes", {})

    @property
    def is_default(self) -> bool:
        return self.role is None


@dataclass(slots=True)
class AccessDecision:
    """The resolved view for a client, plus the proof that earned it."""

    view_name: str
    rule: AccessRule
    proof: Optional[Proof]
    """None for the anonymous default rule."""


class ViewAccessPolicy:
    """Ordered role→view rules for one component."""

    def __init__(self, component: str) -> None:
        self.component = component
        self._rules: list[AccessRule] = []

    def allow(
        self,
        role: Role | str | None,
        view_name: str,
        *,
        required_attributes: Attributes | None = None,
    ) -> "ViewAccessPolicy":
        """Append a rule; ``role=None`` (or the string "others") is the
        anonymous default and must come last."""
        if isinstance(role, str):
            role = None if role.lower() == "others" else Role.parse(role)
        if self._rules and self._rules[-1].is_default:
            raise ValueError(
                f"policy for {self.component}: no rules may follow the "
                f"'others' default"
            )
        self._rules.append(
            AccessRule(
                role=role,
                view_name=view_name,
                required_attributes=required_attributes or {},
            )
        )
        return self

    def rules(self) -> list[AccessRule]:
        return list(self._rules)

    def resolve(
        self,
        client: str,
        engine: DrbacEngine,
        credentials: Iterable[Delegation] | None = None,
    ) -> Optional[AccessDecision]:
        """Pick the view for ``client`` by first provable role.

        Cross-domain clients succeed exactly when dRBAC can chain their
        credentials to one of the policy's local roles.  Returns ``None``
        when no rule applies and there is no anonymous default.
        """
        presented = list(credentials) if credentials is not None else None
        with obs.span(
            "views.acl.resolve", component=self.component, client=client
        ) as span:
            for rule in self._rules:
                if rule.is_default:
                    span.set(view=rule.view_name, rule="others")
                    self._audit(client, rule, proof=None)
                    return AccessDecision(
                        view_name=rule.view_name, rule=rule, proof=None
                    )
                assert rule.role is not None
                if presented is None:
                    # Repository-backed query: ``prove`` serves it from the
                    # incremental engine's maintained reachability when the
                    # graph allows, falling back to harvest + full search.
                    proof = engine.prove(
                        EntityRef(client),
                        rule.role,
                        required_attributes=rule.required_attributes or None,
                    )
                else:
                    # Merge presented credentials with repository mappings so
                    # leaf credentials can chain through cross-domain links.
                    harvested = engine.repository.collect(EntityRef(client), rule.role)
                    merged = {c.credential_id: c for c in harvested}
                    for cred in presented:
                        merged[cred.credential_id] = cred
                    proof = engine.find_proof(
                        EntityRef(client),
                        rule.role,
                        list(merged.values()),
                        required_attributes=rule.required_attributes or None,
                    )
                if proof is not None:
                    span.set(view=rule.view_name, rule=str(rule.role))
                    self._audit(client, rule, proof=proof)
                    return AccessDecision(
                        view_name=rule.view_name, rule=rule, proof=proof
                    )
            span.set(view=None)
            obs.event(
                "view.resolve", component=self.component, principal=client,
                verdict="none",
            )
            return None

    def _audit(
        self, client: str, rule: AccessRule, *, proof: Optional[Proof]
    ) -> None:
        obs.event(
            "view.resolve", component=self.component, principal=client,
            view=rule.view_name,
            role="others" if rule.is_default else str(rule.role),
            chain=len(proof.chain) if proof is not None else 0,
            verdict="grant",
        )
