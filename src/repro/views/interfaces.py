"""Typed interfaces: the unit of view restriction and component linkage.

Components "implement and require typed interfaces" (§2.1) and views
restrict "a list of implemented interfaces" (§4.1).  An
:class:`InterfaceDef` is a named, ordered set of method signatures;
:func:`interface_from_class` derives one from a plain Python class used as
an interface declaration (the analogue of a Java ``interface``).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class MethodSig:
    """A method name plus its positional parameter names (sans ``self``)."""

    name: str
    params: tuple[str, ...] = ()

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.params)})"


@dataclass(frozen=True)
class InterfaceDef:
    """A named interface: an ordered collection of method signatures."""

    name: str
    methods: tuple[MethodSig, ...] = ()

    def method_names(self) -> tuple[str, ...]:
        return tuple(m.name for m in self.methods)

    def method(self, name: str) -> MethodSig:
        for sig in self.methods:
            if sig.name == name:
                return sig
        raise KeyError(f"interface {self.name} has no method {name!r}")

    def __contains__(self, method_name: str) -> bool:
        return any(m.name == method_name for m in self.methods)

    def __str__(self) -> str:
        return self.name


def interface_from_class(cls: type, name: str | None = None) -> InterfaceDef:
    """Derive an :class:`InterfaceDef` from a Python class.

    Every public function defined *directly on the class* (not inherited)
    becomes an interface method; parameter names are taken from the
    signature, dropping ``self``.
    """
    methods: list[MethodSig] = []
    for attr_name, attr in vars(cls).items():
        if attr_name.startswith("_") or not callable(attr):
            continue
        try:
            params = [
                p.name
                for p in inspect.signature(attr).parameters.values()
                if p.name != "self"
                and p.kind
                in (
                    inspect.Parameter.POSITIONAL_ONLY,
                    inspect.Parameter.POSITIONAL_OR_KEYWORD,
                )
            ]
        except (TypeError, ValueError):
            params = []
        methods.append(MethodSig(name=attr_name, params=tuple(params)))
    methods.sort(key=lambda m: m.name)
    return InterfaceDef(name=name or cls.__name__, methods=tuple(methods))


@dataclass
class InterfaceRegistry:
    """Name → interface table shared by a scenario."""

    _interfaces: dict[str, InterfaceDef] = field(default_factory=dict)

    def register(self, interface: InterfaceDef) -> InterfaceDef:
        self._interfaces[interface.name] = interface
        return interface

    def register_class(self, cls: type, name: str | None = None) -> InterfaceDef:
        return self.register(interface_from_class(cls, name))

    def get(self, name: str) -> InterfaceDef:
        try:
            return self._interfaces[name]
        except KeyError:
            raise KeyError(f"unknown interface {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._interfaces

    def names(self) -> list[str]:
        return sorted(self._interfaces)
