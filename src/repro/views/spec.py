"""View specifications: the XML rule language of Table 3(b).

"A minimal view is fully described by a name and a represented object.
The minimal view can be enriched by providing a list of implemented
interfaces, defining new methods and fields, and copying or customizing
existing methods.  For each interface, the view description can specify a
type (local, rmi, or switch) that indicates how the interface is available
to clients."

The XML grammar accepted here mirrors Table 3(b)::

    <View name="ViewMailClient_Partner">
      <Represents name="MailClient"/>
      <Restricts>
        <Interface name="MessageI" type="local"/>
        <Interface name="NotesI"   type="rmi" binding="notes-service"/>
        <Interface name="AddressI" type="switchboard" binding="addr-service"/>
      </Restricts>
      <Adds_Fields>
        <Field name="accountCopy" type="Account"/>
      </Adds_Fields>
      <Replicates_Fields>            <!-- data-view subset (extension) -->
        <Field name="notes"/>
      </Replicates_Fields>
      <Adds_Methods>
        <MSign>mergeImageIntoView(image)</MSign>
        <MBody>...python statements...</MBody>
      </Adds_Methods>
      <Customizes_Methods>
        <MSign>addMeeting(name)</MSign>
        <MBody>...python statements...</MBody>
      </Customizes_Methods>
    </View>

``MSign``/``MBody`` pairs appear in order as direct children, exactly as
in the paper.  Method bodies are Python statements in this reproduction
(the paper's are Java, inserted via Javassist).  Java-style signatures
such as ``boolean addMeeting(String name)`` are accepted: types are
stripped, parameter names kept.
"""

from __future__ import annotations

import enum
import hashlib
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field

from ..errors import ViewSpecError


class InterfaceMode(enum.Enum):
    """How an interface is exposed to the view's clients (§4.1)."""

    LOCAL = "local"
    RMI = "rmi"
    SWITCHBOARD = "switchboard"

    @staticmethod
    def parse(text: str) -> "InterfaceMode":
        normalized = text.strip().lower()
        if normalized in ("switch", "switchboard"):
            return InterfaceMode.SWITCHBOARD
        try:
            return InterfaceMode(normalized)
        except ValueError:
            raise ViewSpecError(
                f"unknown interface type {text!r}; expected local, rmi, or switchboard"
            ) from None


@dataclass(frozen=True, slots=True)
class InterfaceRestriction:
    """One ``<Interface>`` row: name, exposure mode, and remote binding."""

    name: str
    mode: InterfaceMode
    binding: str = ""
    """Naming-registry key resolved at view construction (remote modes)."""


@dataclass(frozen=True, slots=True)
class FieldSpec:
    """One ``<Field>`` row."""

    name: str
    type_name: str = ""


@dataclass(frozen=True, slots=True)
class MethodSpec:
    """A method signature + Python body from the XML description."""

    name: str
    params: tuple[str, ...]
    body: str

    @staticmethod
    def parse(signature: str, body: str) -> "MethodSpec":
        name, params = parse_signature(signature)
        return MethodSpec(name=name, params=params, body=body)


def parse_signature(signature: str) -> tuple[str, tuple[str, ...]]:
    """Parse ``addMeeting(name)`` or Java-style ``boolean addMeeting(String name)``.

    Returns (method name, parameter names).  Return types and parameter
    types are discarded; only names survive.
    """
    signature = signature.strip()
    open_paren = signature.find("(")
    close_paren = signature.rfind(")")
    if open_paren < 0 or close_paren < open_paren:
        raise ViewSpecError(f"malformed method signature: {signature!r}")
    head = signature[:open_paren].strip()
    if not head:
        raise ViewSpecError(f"method signature missing a name: {signature!r}")
    name = head.split()[-1]  # drop any Java-style return type
    params: list[str] = []
    param_text = signature[open_paren + 1 : close_paren].strip()
    if param_text and param_text != "...":
        for chunk in param_text.split(","):
            tokens = chunk.replace("[]", " ").split()
            if not tokens:
                raise ViewSpecError(f"empty parameter in signature: {signature!r}")
            params.append(tokens[-1])
    if not name.isidentifier():
        raise ViewSpecError(f"method name {name!r} is not a valid identifier")
    for param in params:
        if not param.isidentifier():
            raise ViewSpecError(f"parameter {param!r} is not a valid identifier")
    return name, tuple(params)


# The coherence methods the paper requires every view description to
# provide (Table 3b): "complete implementations for cache coherence-
# specific methods".  VIG supplies defaults when they are omitted and
# Replicates_Fields is present (DESIGN.md: implemented future work).
COHERENCE_METHODS = (
    "mergeImageIntoView",
    "mergeImageIntoObj",
    "extractImageFromView",
    "extractImageFromObj",
)


@dataclass
class ViewSpec:
    """A complete view description (the in-memory form of Table 3b)."""

    name: str
    represents: str
    interfaces: tuple[InterfaceRestriction, ...] = ()
    added_fields: tuple[FieldSpec, ...] = ()
    replicated_fields: tuple[str, ...] = ()
    copied_methods: tuple[str, ...] = ()
    """Methods copied from the represented object by name, outside any
    restricted interface ("copying ... existing methods", §4.1)."""
    added_methods: tuple[MethodSpec, ...] = ()
    customized_methods: tuple[MethodSpec, ...] = ()
    constructor_body: str = ""
    properties: dict = field(default_factory=dict)
    """Creation-time view properties (§4.2: "view properties ... specified
    at creation time")."""

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ViewSpecError(f"view name {self.name!r} is not a valid identifier")
        if not self.represents:
            raise ViewSpecError("a view must name the object it represents")
        seen: set[str] = set()
        for restriction in self.interfaces:
            if restriction.name in seen:
                raise ViewSpecError(
                    f"interface {restriction.name!r} restricted twice in {self.name}"
                )
            seen.add(restriction.name)
        method_names = [m.name for m in self.added_methods] + [
            m.name for m in self.customized_methods
        ]
        duplicates = {n for n in method_names if method_names.count(n) > 1}
        if duplicates:
            raise ViewSpecError(
                f"method(s) defined more than once in {self.name}: {sorted(duplicates)}"
            )

    # -- convenience ------------------------------------------------------

    def interfaces_in_mode(self, mode: InterfaceMode) -> list[InterfaceRestriction]:
        return [i for i in self.interfaces if i.mode is mode]

    def method_spec(self, name: str) -> MethodSpec | None:
        for spec in self.added_methods + self.customized_methods:
            if spec.name == name:
                return spec
        return None

    def provides_coherence_methods(self) -> bool:
        provided = {m.name for m in self.added_methods}
        return all(m in provided for m in COHERENCE_METHODS)

    def digest(self) -> str:
        """Stable content hash used as the VIG cache key."""
        hasher = hashlib.sha256()
        hasher.update(self.to_xml().encode())
        return hasher.hexdigest()[:24]

    # -- XML --------------------------------------------------------------

    @staticmethod
    def from_xml(text: str) -> "ViewSpec":
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise ViewSpecError(f"unparseable view XML: {exc}") from exc
        if root.tag != "View":
            raise ViewSpecError(f"root element must be <View>, got <{root.tag}>")
        name = (root.get("name") or "").strip()
        if not name:
            raise ViewSpecError("<View> requires a name attribute")

        represents = ""
        interfaces: list[InterfaceRestriction] = []
        added_fields: list[FieldSpec] = []
        replicated: list[str] = []
        copied: list[str] = []
        added_methods: list[MethodSpec] = []
        customized: list[MethodSpec] = []
        constructor_body = ""

        for child in root:
            if child.tag == "Represents":
                represents = (child.get("name") or "").strip()
            elif child.tag == "Restricts":
                for iface in child:
                    if iface.tag != "Interface":
                        raise ViewSpecError(
                            f"<Restricts> may only contain <Interface>, got <{iface.tag}>"
                        )
                    iface_name = (iface.get("name") or "").strip()
                    if not iface_name:
                        raise ViewSpecError("<Interface> requires a name attribute")
                    interfaces.append(
                        InterfaceRestriction(
                            name=iface_name,
                            mode=InterfaceMode.parse(iface.get("type", "local")),
                            binding=(iface.get("binding") or "").strip(),
                        )
                    )
            elif child.tag == "Adds_Fields":
                added_fields.extend(_parse_fields(child))
            elif child.tag == "Replicates_Fields":
                replicated.extend(f.name for f in _parse_fields(child))
            elif child.tag == "Copies_Methods":
                for method_el in child:
                    if method_el.tag != "MName":
                        raise ViewSpecError(
                            f"<Copies_Methods> may only contain <MName>, "
                            f"got <{method_el.tag}>"
                        )
                    method_name = (method_el.text or "").strip()
                    if not method_name.isidentifier():
                        raise ViewSpecError(
                            f"copied method name {method_name!r} is not a "
                            f"valid identifier"
                        )
                    copied.append(method_name)
            elif child.tag == "Adds_Methods":
                added_methods.extend(_parse_methods(child))
            elif child.tag == "Customizes_Methods":
                customized.extend(_parse_methods(child))
            elif child.tag == "Constructor":
                constructor_body = (child.text or "").strip()
            else:
                raise ViewSpecError(f"unknown element <{child.tag}> in view {name}")

        if not represents:
            raise ViewSpecError(f"view {name} is missing <Represents>")

        # The paper's spec may define the constructor as an Adds_Methods
        # entry named like the view; lift it into the constructor body.
        lifted: list[MethodSpec] = []
        for method in added_methods:
            if method.name == name:
                constructor_body = method.body
            else:
                lifted.append(method)

        return ViewSpec(
            name=name,
            represents=represents,
            interfaces=tuple(interfaces),
            added_fields=tuple(added_fields),
            replicated_fields=tuple(replicated),
            copied_methods=tuple(copied),
            added_methods=tuple(lifted),
            customized_methods=tuple(customized),
            constructor_body=constructor_body,
        )

    def to_xml(self) -> str:
        root = ET.Element("View", name=self.name)
        ET.SubElement(root, "Represents", name=self.represents)
        if self.interfaces:
            restricts = ET.SubElement(root, "Restricts")
            for restriction in self.interfaces:
                attrs = {"name": restriction.name, "type": restriction.mode.value}
                if restriction.binding:
                    attrs["binding"] = restriction.binding
                ET.SubElement(restricts, "Interface", **attrs)
        if self.added_fields:
            adds = ET.SubElement(root, "Adds_Fields")
            for fld in self.added_fields:
                attrs = {"name": fld.name}
                if fld.type_name:
                    attrs["type"] = fld.type_name
                ET.SubElement(adds, "Field", **attrs)
        if self.replicated_fields:
            repl = ET.SubElement(root, "Replicates_Fields")
            for fld_name in self.replicated_fields:
                ET.SubElement(repl, "Field", name=fld_name)
        if self.copied_methods:
            copies = ET.SubElement(root, "Copies_Methods")
            for method_name in self.copied_methods:
                mname = ET.SubElement(copies, "MName")
                mname.text = method_name
        for tag, methods in (
            ("Adds_Methods", self.added_methods),
            ("Customizes_Methods", self.customized_methods),
        ):
            if methods:
                section = ET.SubElement(root, tag)
                for method in methods:
                    sig = ET.SubElement(section, "MSign")
                    sig.text = f"{method.name}({', '.join(method.params)})"
                    body = ET.SubElement(section, "MBody")
                    body.text = method.body
        if self.constructor_body:
            ctor = ET.SubElement(root, "Constructor")
            ctor.text = self.constructor_body
        ET.indent(root)
        return ET.tostring(root, encoding="unicode")


def _parse_fields(element: ET.Element) -> list[FieldSpec]:
    fields: list[FieldSpec] = []
    for child in element:
        if child.tag != "Field":
            raise ViewSpecError(
                f"<{element.tag}> may only contain <Field>, got <{child.tag}>"
            )
        fld_name = (child.get("name") or "").strip()
        if not fld_name.isidentifier():
            raise ViewSpecError(f"field name {fld_name!r} is not a valid identifier")
        fields.append(FieldSpec(name=fld_name, type_name=(child.get("type") or "").strip()))
    return fields


def _parse_methods(element: ET.Element) -> list[MethodSpec]:
    """Parse ordered MSign/MBody pairs (the paper's flat layout)."""
    methods: list[MethodSpec] = []
    pending_sig: str | None = None
    for child in element:
        if child.tag == "MSign":
            if pending_sig is not None:
                raise ViewSpecError(
                    f"<MSign>{pending_sig}</MSign> has no matching <MBody>"
                )
            pending_sig = (child.text or "").strip()
        elif child.tag == "MBody":
            if pending_sig is None:
                raise ViewSpecError("<MBody> without a preceding <MSign>")
            methods.append(MethodSpec.parse(pending_sig, (child.text or "").strip()))
            pending_sig = None
        elif child.tag == "Method":
            sig_el = child.find("MSign")
            body_el = child.find("MBody")
            if sig_el is None or body_el is None:
                raise ViewSpecError("<Method> requires <MSign> and <MBody>")
            methods.append(
                MethodSpec.parse(
                    (sig_el.text or "").strip(), (body_el.text or "").strip()
                )
            )
        else:
            raise ViewSpecError(
                f"<{element.tag}> may only contain MSign/MBody pairs, got <{child.tag}>"
            )
    if pending_sig is not None:
        raise ViewSpecError(f"<MSign>{pending_sig}</MSign> has no matching <MBody>")
    return methods
