"""Cache coherence between views and their original objects (§4.1/§4.3).

Views derived from Object Views (OOPSLA '99) carry four image methods —
``mergeImageIntoView``, ``mergeImageIntoObj``, ``extractImageFromView``,
``extractImageFromObj`` — plus the invariant VIG enforces by construction:
"all methods should work with the most current image.  VIG ensures it by
placing acquireImage and releaseImage method calls at the beginning and
the end of every method implemented by the view."

The :class:`CacheManager` implements that acquire/release protocol with a
pluggable policy; :class:`ImageService` is the origin-side half, exported
over RMI/Switchboard when the original object lives on another node.

Images are JSON-compatible dicts of field values, the Python analogue of
the paper's ``byte[]`` images.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Protocol

from .. import obs
from ..errors import ViewError
from ..obs import names as metric_names


class CoherencePolicy(enum.Enum):
    """When the view synchronizes with its original object.

    * ``ON_DEMAND`` — pull a fresh image on every acquire and push local
      updates on every release (strongest; the default).
    * ``WRITE_THROUGH`` — push on release only; reads use the local image.
    * ``MANUAL`` — the application invokes the image methods explicitly
      (the paper's base behaviour, where coherence code is user-supplied).
    """

    ON_DEMAND = "on-demand"
    WRITE_THROUGH = "write-through"
    MANUAL = "manual"


class OriginPort(Protocol):
    """The origin-side image operations, local or remote."""

    def extract_image(self, fields: list[str]) -> dict:  # pragma: no cover
        ...

    def merge_image(self, image: dict) -> None:  # pragma: no cover
        ...


class LocalOrigin:
    """Adapter exposing a same-process original object as an OriginPort."""

    def __init__(self, obj: Any) -> None:
        self._obj = obj

    def extract_image(self, fields: list[str]) -> dict:
        image: dict[str, Any] = {}
        for name in fields:
            if not hasattr(self._obj, name):
                raise ViewError(
                    f"original object has no replicated field {name!r}"
                )
            image[name] = getattr(self._obj, name)
        return image

    def merge_image(self, image: dict) -> None:
        for name, value in image.items():
            setattr(self._obj, name, value)


class ImageService:
    """Origin-side service exported for remote views.

    The deployment infrastructure exports one of these next to the
    original object; remote views call it through their rmi or switchboard
    stubs.
    """

    def __init__(self, obj: Any) -> None:
        self._origin = LocalOrigin(obj)

    def extract_image(self, fields: list[str]) -> dict:
        return self._origin.extract_image(fields)

    def merge_image(self, image: dict) -> None:
        self._origin.merge_image(image)


@dataclass
class CoherenceStats:
    acquires: int = 0
    releases: int = 0
    images_pulled: int = 0
    images_pushed: int = 0


class CacheManager:
    """Per-view coherence driver.

    The generated view calls :meth:`acquire_image` / :meth:`release_image`
    around every public method (inserted by VIG).  Reentrant calls (a view
    method invoking another view method) are tracked so only the outermost
    call synchronizes.
    """

    def __init__(
        self,
        view: Any,
        *,
        policy: CoherencePolicy = CoherencePolicy.ON_DEMAND,
        properties: dict | None = None,
    ) -> None:
        self.view = view
        self.policy = policy
        self.properties = dict(properties or {})
        self.stats = CoherenceStats()
        self._depth = 0
        self._dirty = False

    def mark_dirty(self) -> None:
        """Record that the view's local image diverged from the original."""
        self._dirty = True

    def acquire_image(self) -> None:
        self._depth += 1
        if self._depth > 1:
            return
        self.stats.acquires += 1
        obs.counter(metric_names.COHERENCE_ACQUIRES).inc()
        if self.policy is CoherencePolicy.ON_DEMAND:
            image = self.view.extractImageFromObj()
            if image:
                self.view.mergeImageIntoView(image)
                self.stats.images_pulled += 1
                obs.counter(metric_names.COHERENCE_IMAGES_PULLED).inc()

    def release_image(self) -> None:
        if self._depth == 0:
            raise ViewError("release_image without matching acquire_image")
        self._depth -= 1
        if self._depth > 0:
            return
        self.stats.releases += 1
        obs.counter(metric_names.COHERENCE_RELEASES).inc()
        if self.policy in (CoherencePolicy.ON_DEMAND, CoherencePolicy.WRITE_THROUGH):
            image = self.view.extractImageFromView()
            if image:
                self.view.mergeImageIntoObj(image)
                self.stats.images_pushed += 1
                obs.counter(metric_names.COHERENCE_IMAGES_PUSHED).inc()
                self._dirty = False
