"""Object views: customizing reusable components (Section 4).

The package provides the view specification language (Table 3b), the VIG
view generator (Table 5), cache coherence between views and originals,
remote stubs, and the role→view access policy (Table 4).
"""

from .acl import AccessDecision, AccessRule, ViewAccessPolicy
from .autoview import ViewHint, infer_view_spec, method_writes_state
from .coherence import (
    CacheManager,
    CoherencePolicy,
    CoherenceStats,
    ImageService,
    LocalOrigin,
    OriginPort,
)
from .interfaces import (
    InterfaceDef,
    InterfaceRegistry,
    MethodSig,
    interface_from_class,
)
from .proxies import (
    IMAGE_BINDING_PREFIX,
    RmiStub,
    SwitchboardStub,
    ViewRuntime,
)
from .spec import (
    COHERENCE_METHODS,
    FieldSpec,
    InterfaceMode,
    InterfaceRestriction,
    MethodSpec,
    ViewSpec,
    parse_signature,
)
from .vig import (
    Vig,
    VigStats,
    represented_fields,
    represented_methods,
    self_attribute_refs,
    wrap_with_coherence,
)

__all__ = [
    "AccessDecision",
    "AccessRule",
    "ViewHint",
    "infer_view_spec",
    "method_writes_state",
    "COHERENCE_METHODS",
    "CacheManager",
    "CoherencePolicy",
    "CoherenceStats",
    "FieldSpec",
    "IMAGE_BINDING_PREFIX",
    "ImageService",
    "InterfaceDef",
    "InterfaceMode",
    "InterfaceRegistry",
    "InterfaceRestriction",
    "LocalOrigin",
    "MethodSig",
    "MethodSpec",
    "OriginPort",
    "RmiStub",
    "SwitchboardStub",
    "Vig",
    "VigStats",
    "ViewAccessPolicy",
    "ViewRuntime",
    "ViewSpec",
    "interface_from_class",
    "parse_signature",
    "represented_fields",
    "represented_methods",
    "self_attribute_refs",
    "wrap_with_coherence",
]
