"""Number-theoretic primitives for the from-scratch PKI substrate.

The paper's dRBAC credentials are "cryptographically signed by [their]
issuer"; the offline reproduction implements its own RSA over these
primitives instead of depending on an external crypto library.

Only deterministic, well-tested building blocks live here: modular
exponentiation (via the builtin ``pow``), extended GCD / modular inverse,
Miller-Rabin probabilistic primality testing, and prime generation.
"""

from __future__ import annotations

import secrets

# Small primes used for fast trial-division rejection before Miller-Rabin.
_SMALL_PRIMES: tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293,
    307, 311, 313, 317, 331, 337, 347, 349,
)


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclidean algorithm.

    Returns ``(g, x, y)`` with ``g = gcd(a, b)`` and ``a*x + b*y == g``.
    Iterative to avoid recursion limits on large inputs.
    """
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    return old_r, old_x, old_y


def modinv(a: int, m: int) -> int:
    """Modular inverse of ``a`` modulo ``m``.

    Raises:
        ValueError: if ``a`` is not invertible mod ``m``.
    """
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} has no inverse modulo {m} (gcd={g})")
    return x % m


def is_probable_prime(n: int, rounds: int = 40) -> bool:
    """Miller-Rabin probabilistic primality test.

    With 40 random bases the error probability is below 4**-40, far
    below anything observable in a test suite.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n - 1 = d * 2**r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = secrets.randbelow(n - 3) + 2  # uniform in [2, n-2]
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int) -> int:
    """Generate a random probable prime with exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("prime size must be at least 8 bits")
    while True:
        # Force the top two bits so p*q has full size, and the low bit (odd).
        candidate = secrets.randbits(bits) | (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate):
            return candidate


def generate_distinct_primes(bits: int) -> tuple[int, int]:
    """Generate two distinct primes of ``bits`` bits each (for RSA)."""
    p = generate_prime(bits)
    while True:
        q = generate_prime(bits)
        if q != p:
            return p, q


def int_to_bytes(n: int) -> bytes:
    """Minimal big-endian byte encoding of a non-negative integer."""
    if n < 0:
        raise ValueError("cannot encode negative integers")
    length = max(1, (n.bit_length() + 7) // 8)
    return n.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Big-endian byte decoding (inverse of :func:`int_to_bytes`)."""
    return int.from_bytes(data, "big")
