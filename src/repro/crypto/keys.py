"""Key and identity abstractions shared by dRBAC and Switchboard.

An :class:`Identity` bundles an entity name with an RSA keypair; its public
half (:class:`PublicIdentity`) is what circulates inside credentials and
channel handshakes.  A :class:`KeyStore` caches keypairs per entity so
scenario builders and tests do not pay RSA keygen repeatedly.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from .rsa import DEFAULT_KEY_BITS, RsaPrivateKey, RsaPublicKey, generate_keypair


@dataclass(frozen=True, slots=True)
class PublicIdentity:
    """The public, shareable half of an entity's identity."""

    name: str
    public_key: RsaPublicKey

    def fingerprint(self) -> str:
        return self.public_key.fingerprint()

    def verify(self, message: bytes, signature: bytes) -> bool:
        return self.public_key.verify(message, signature)


@dataclass(frozen=True, slots=True)
class Identity:
    """An entity name bound to a full RSA keypair."""

    name: str
    private_key: RsaPrivateKey

    @property
    def public(self) -> PublicIdentity:
        return PublicIdentity(name=self.name, public_key=self.private_key.public_key)

    def sign(self, message: bytes) -> bytes:
        return self.private_key.sign(message)

    @staticmethod
    def generate(name: str, bits: int = DEFAULT_KEY_BITS) -> "Identity":
        return Identity(name=name, private_key=generate_keypair(bits))


@dataclass
class KeyStore:
    """Thread-safe cache of identities keyed by entity name.

    Scenario builders create dozens of entities; generating each RSA keypair
    once and caching it keeps construction costs linear in distinct names.
    """

    key_bits: int = DEFAULT_KEY_BITS
    _identities: dict[str, Identity] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def identity(self, name: str) -> Identity:
        """Return (creating on first use) the identity for ``name``."""
        with self._lock:
            ident = self._identities.get(name)
            if ident is None:
                ident = Identity.generate(name, bits=self.key_bits)
                self._identities[name] = ident
            return ident

    def public(self, name: str) -> PublicIdentity:
        return self.identity(name).public

    def known_names(self) -> list[str]:
        with self._lock:
            return sorted(self._identities)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._identities

    def __len__(self) -> int:
        with self._lock:
            return len(self._identities)
