"""Authenticated symmetric encryption for Switchboard payloads.

Encrypt-then-MAC over a SHA-256 keystream in counter mode:

* keystream block ``i`` = SHA-256(enc_key || nonce || counter_i)
* ciphertext = plaintext XOR keystream
* tag = HMAC-SHA256(mac_key, nonce || ciphertext)

Key separation: the 32-byte session key from the DH exchange is split into
independent encryption and MAC keys via domain-separated hashing.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass

from ..errors import CipherError

_NONCE_LEN = 16
_TAG_LEN = 32
_BLOCK = 32  # SHA-256 output size


def _derive_keys(session_key: bytes) -> tuple[bytes, bytes]:
    if len(session_key) < 16:
        raise CipherError("session key must be at least 16 bytes")
    enc = hashlib.sha256(b"repro-enc|" + session_key).digest()
    mac = hashlib.sha256(b"repro-mac|" + session_key).digest()
    return enc, mac


def _keystream(enc_key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    for counter in range((length + _BLOCK - 1) // _BLOCK):
        blocks.append(
            hashlib.sha256(
                enc_key + nonce + counter.to_bytes(8, "big")
            ).digest()
        )
    return b"".join(blocks)[:length]


@dataclass(slots=True)
class AuthenticatedCipher:
    """Symmetric authenticated encryption bound to one session key."""

    _enc_key: bytes
    _mac_key: bytes

    def __init__(self, session_key: bytes) -> None:
        self._enc_key, self._mac_key = _derive_keys(session_key)

    def encrypt(self, plaintext: bytes, associated_data: bytes = b"") -> bytes:
        """Return ``nonce || ciphertext || tag``.

        ``associated_data`` is authenticated but not encrypted (used for
        sequence numbers so replayed frames fail the tag check).
        """
        nonce = secrets.token_bytes(_NONCE_LEN)
        stream = _keystream(self._enc_key, nonce, len(plaintext))
        ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
        tag = hmac.new(
            self._mac_key, nonce + associated_data + ciphertext, hashlib.sha256
        ).digest()
        return nonce + ciphertext + tag

    def decrypt(self, frame: bytes, associated_data: bytes = b"") -> bytes:
        """Verify and decrypt a frame produced by :meth:`encrypt`.

        Raises:
            CipherError: on truncation, tampering, or wrong associated data.
        """
        if len(frame) < _NONCE_LEN + _TAG_LEN:
            raise CipherError("frame too short")
        nonce = frame[:_NONCE_LEN]
        tag = frame[-_TAG_LEN:]
        ciphertext = frame[_NONCE_LEN:-_TAG_LEN]
        expected = hmac.new(
            self._mac_key, nonce + associated_data + ciphertext, hashlib.sha256
        ).digest()
        if not hmac.compare_digest(tag, expected):
            raise CipherError("authentication tag mismatch")
        stream = _keystream(self._enc_key, nonce, len(ciphertext))
        return bytes(c ^ s for c, s in zip(ciphertext, stream))
