"""From-scratch RSA signatures for dRBAC credentials.

dRBAC only needs *unforgeable, verifiable issuer signatures* over credential
bytes; this module implements hash-then-sign RSA with a deterministic
full-domain-style padding (a simplified PKCS#1 v1.5 layout).  It is
simulation-grade crypto as documented in DESIGN.md — not hardened against
side channels — but the algebra is real: signatures cannot be forged or
transplanted without the private key.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..errors import CryptoError, SignatureError
from .numtheory import bytes_to_int, generate_distinct_primes, int_to_bytes, modinv

# SHA-256 DigestInfo prefix from PKCS#1 v1.5 (DER header for the hash OID).
_SHA256_PREFIX = bytes.fromhex("3031300d060960864801650304020105000420")

DEFAULT_KEY_BITS = 1024  # simulation-grade; keygen stays fast in tests
_PUBLIC_EXPONENT = 65537


@dataclass(frozen=True, slots=True)
class RsaPublicKey:
    """RSA public key ``(n, e)``.

    Hashable and comparable so it can serve as an entity's public identity
    in dRBAC maps and repositories.
    """

    n: int
    e: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def fingerprint(self) -> str:
        """Short stable hex identifier for display and dict keys."""
        material = int_to_bytes(self.n) + b"|" + int_to_bytes(self.e)
        return hashlib.sha256(material).hexdigest()[:16]

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Return True iff ``signature`` is a valid signature on ``message``."""
        if len(signature) != self.byte_length:
            return False
        s = bytes_to_int(signature)
        if s >= self.n:
            return False
        em = pow(s, self.e, self.n).to_bytes(self.byte_length, "big")
        return em == _encode_digest(message, self.byte_length)

    def require_valid(self, message: bytes, signature: bytes) -> None:
        """Like :meth:`verify` but raises :class:`SignatureError` on failure."""
        if not self.verify(message, signature):
            raise SignatureError(
                f"signature verification failed for key {self.fingerprint()}"
            )


@dataclass(frozen=True, slots=True)
class RsaPrivateKey:
    """RSA private key; carries its public half for convenience."""

    n: int
    e: int
    d: int

    @property
    def public_key(self) -> RsaPublicKey:
        return RsaPublicKey(n=self.n, e=self.e)

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def sign(self, message: bytes) -> bytes:
        """Produce a deterministic hash-then-sign RSA signature."""
        em = _encode_digest(message, self.byte_length)
        m = bytes_to_int(em)
        if m >= self.n:  # pragma: no cover - padding guarantees m < n
            raise CryptoError("encoded message does not fit the modulus")
        s = pow(m, self.d, self.n)
        return s.to_bytes(self.byte_length, "big")


def _encode_digest(message: bytes, em_len: int) -> bytes:
    """PKCS#1 v1.5-style encoding: 00 01 FF..FF 00 || DigestInfo || hash."""
    digest = hashlib.sha256(message).digest()
    t = _SHA256_PREFIX + digest
    ps_len = em_len - len(t) - 3
    if ps_len < 8:
        raise CryptoError(f"modulus too small for SHA-256 signing ({em_len} bytes)")
    return b"\x00\x01" + b"\xff" * ps_len + b"\x00" + t


def generate_keypair(bits: int = DEFAULT_KEY_BITS) -> RsaPrivateKey:
    """Generate a fresh RSA keypair with an n of roughly ``bits`` bits."""
    if bits < 512:
        raise ValueError("RSA modulus must be at least 512 bits")
    half = bits // 2
    while True:
        p, q = generate_distinct_primes(half)
        n = p * q
        phi = (p - 1) * (q - 1)
        try:
            d = modinv(_PUBLIC_EXPONENT, phi)
        except ValueError:
            continue  # gcd(e, phi) != 1 — regenerate
        return RsaPrivateKey(n=n, e=_PUBLIC_EXPONENT, d=d)
