"""Cryptographic substrate: from-scratch RSA, Diffie-Hellman, and an
authenticated stream cipher.

Simulation-grade by design (see DESIGN.md §6): the algebra is real and the
security properties exercised by the test suite hold (unforgeability of
signatures, tamper detection, replay rejection), but nothing here is
hardened against side channels.
"""

from .cipher import AuthenticatedCipher
from .dh import MODP_2048_GENERATOR, MODP_2048_PRIME, DiffieHellman
from .keys import Identity, KeyStore, PublicIdentity
from .numtheory import (
    bytes_to_int,
    egcd,
    generate_distinct_primes,
    generate_prime,
    int_to_bytes,
    is_probable_prime,
    modinv,
)
from .rsa import (
    DEFAULT_KEY_BITS,
    RsaPrivateKey,
    RsaPublicKey,
    generate_keypair,
)

__all__ = [
    "AuthenticatedCipher",
    "DEFAULT_KEY_BITS",
    "DiffieHellman",
    "Identity",
    "KeyStore",
    "MODP_2048_GENERATOR",
    "MODP_2048_PRIME",
    "PublicIdentity",
    "RsaPrivateKey",
    "RsaPublicKey",
    "bytes_to_int",
    "egcd",
    "generate_distinct_primes",
    "generate_keypair",
    "generate_prime",
    "int_to_bytes",
    "is_probable_prime",
    "modinv",
]
