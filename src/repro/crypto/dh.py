"""Diffie-Hellman key agreement for Switchboard channel establishment.

The paper: "When Switchboard connections span multiple hosts, a cipher is
established using a key-exchange protocol."  We implement classic
finite-field Diffie-Hellman over the 2048-bit MODP group 14 from RFC 3526,
with subgroup-confinement checks on the received public value.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass, field

from ..errors import KeyExchangeError
from .numtheory import int_to_bytes

# RFC 3526, group 14: 2048-bit MODP prime, generator 2.
MODP_2048_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
MODP_2048_GENERATOR = 2


@dataclass(slots=True)
class DiffieHellman:
    """One party's state in a DH exchange.

    Usage::

        alice, bob = DiffieHellman(), DiffieHellman()
        ka = alice.compute_shared(bob.public_value)
        kb = bob.compute_shared(alice.public_value)
        assert ka == kb
    """

    prime: int = MODP_2048_PRIME
    generator: int = MODP_2048_GENERATOR
    _private: int = field(default=0, repr=False)
    public_value: int = field(default=0)

    def __post_init__(self) -> None:
        if self._private == 0:
            # 256-bit exponent: ample for a 2048-bit group at simulation grade.
            self._private = secrets.randbits(256) | (1 << 255)
        self.public_value = pow(self.generator, self._private, self.prime)

    def compute_shared(self, peer_public: int) -> bytes:
        """Derive the 32-byte shared key from the peer's public value.

        Rejects degenerate values (0, 1, p-1, out of range) that would pin
        the shared secret to a known constant.
        """
        if not 1 < peer_public < self.prime - 1:
            raise KeyExchangeError("peer DH public value out of range")
        shared = pow(peer_public, self._private, self.prime)
        if shared in (0, 1, self.prime - 1):  # pragma: no cover - defensive
            raise KeyExchangeError("degenerate DH shared secret")
        return hashlib.sha256(b"repro-dh-v1|" + int_to_bytes(shared)).digest()
