"""The in-memory "disk": named byte areas that survive node crashes.

A :class:`SimDisk` is the durability boundary of the simulated world.
Everything a node keeps in ordinary Python objects dies with
:meth:`~repro.durable.node.DurableNode.crash`; bytes written here live
on.  The only fault the disk models is the one real append-only logs
suffer: a **torn tail**, where the last write was in flight when the
node died and an arbitrary suffix of the area is missing.  Torn tails
are injected deliberately (seeded, via fault plans), never drawn from
ambient randomness, so recovery runs are replayable byte for byte.
"""

from __future__ import annotations


class SimDisk:
    """Named append-only byte areas with whole-area replace and truncation.

    ``append`` models the WAL write path; ``replace`` models an atomic
    rename (the snapshot path: write to a temp file, fsync, rename —
    collapsed here to one step because the simulation injects torn tails
    only into append streams, matching the classic recovery literature
    where snapshot installation is made atomic and the log tail is not).
    """

    def __init__(self) -> None:
        self._areas: dict[str, bytearray] = {}

    def read(self, area: str) -> bytes:
        return bytes(self._areas.get(area, b""))

    def size(self, area: str) -> int:
        return len(self._areas.get(area, b""))

    def append(self, area: str, data: bytes) -> None:
        self._areas.setdefault(area, bytearray()).extend(data)

    def replace(self, area: str, data: bytes) -> None:
        """Atomically replace the whole area (snapshot installation)."""
        self._areas[area] = bytearray(data)

    def truncate_tail(self, area: str, nbytes: int) -> int:
        """Drop up to ``nbytes`` from the end of ``area`` (torn write).

        Returns the number of bytes actually removed (clamped to the
        area's size), so callers can report the injected damage honestly.
        """
        if nbytes < 0:
            raise ValueError(f"cannot truncate a negative tail: {nbytes}")
        buf = self._areas.get(area)
        if buf is None or nbytes == 0:
            return 0
        dropped = min(nbytes, len(buf))
        del buf[len(buf) - dropped:]
        return dropped
