"""The recoverable node: WAL + snapshot replay + sequence-numbered catch-up.

A :class:`DurableNode` wraps one :class:`~repro.drbac.engine.DrbacEngine`
(and optionally its :class:`~repro.drbac.cache.CachedAuthorizer`) and
makes node restart a real, lossy event:

* while **up**, every update delivered by the :class:`UpdateFeed` is
  appended to the node's :class:`~repro.durable.wal.WriteAheadLog`
  *before* it is applied to the engine, and the log periodically
  compacts into a snapshot;
* :meth:`crash` stops applying updates and drops every volatile
  structure's claim to truth — the in-memory repository shards, the
  incremental engine's reachability and dependents indexes, the
  ``MonitorHub`` subscription table, and the authorization cache are all
  treated as lost;
* :meth:`restart` runs the recovery protocol: replay snapshot+WAL (a
  torn tail shortens the replay to a valid prefix), rebuild the
  incremental indexes by republishing the recovered credential set,
  re-subscribe monitor callbacks, pull exactly the missed gap
  ``(last_durable_seqno, peer_seqno]`` from the feed, and conservatively
  evict every cache entry not provable from the recovered state.

The recovery invariant the simulation tester checks end to end: after
``restart`` returns, the node's observable authorization behaviour is
identical to a node that never crashed — even when revocations landed
while it was down and the WAL tail was torn off.  ``mutation =
"skip-catchup"`` deliberately breaks the gap pull, which the
differential drill must detect as an oracle divergence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from .. import obs
from ..drbac.repository import BOTH_TAGS, DiscoveryTag
from ..drbac.wire import delegation_from_wire, delegation_to_wire
from ..obs import names as metric_names
from .disk import SimDisk
from .wal import WriteAheadLog, digest_state

MUTATIONS = ("skip-catchup",)

FeedListener = Callable[[int, str, dict], None]
"""Called with (seqno, kind, payload) for each feed update."""

_TAG_BY_VALUE = {tag.value: tag for tag in DiscoveryTag}


def _tags_to_wire(tags) -> list[str]:
    return sorted(tag.value for tag in tags)


def _tags_from_wire(values: list[str]) -> frozenset[DiscoveryTag]:
    return frozenset(_TAG_BY_VALUE[value] for value in values)


class UpdateFeed:
    """The live-replica update stream: publishes and revokes, numbered.

    The feed is the durability anchor *outside* the crashing node — in a
    deployed system it is the surviving replica (or the org's credential
    authority) that kept serving while the node was down.  Every update
    gets the next monotonic sequence number; subscribers receive it
    synchronously; :meth:`since` replays the gap a recovering node
    missed.  The feed itself never crashes in this model — quorum writes
    so *it* can fail too are an open item on the roadmap.
    """

    def __init__(self) -> None:
        self.seqno = 0
        self._updates: list[tuple[int, str, dict]] = []
        self._listeners: list[FeedListener] = []

    def subscribe(self, listener: FeedListener) -> None:
        self._listeners.append(listener)

    def _emit(self, kind: str, payload: dict) -> int:
        self.seqno += 1
        seq = self.seqno
        self._updates.append((seq, kind, payload))
        for listener in list(self._listeners):
            listener(seq, kind, payload)
        return seq

    def publish(self, delegation, tags=BOTH_TAGS) -> int:
        return self._emit(
            "publish",
            {"cred": delegation_to_wire(delegation), "tags": _tags_to_wire(tags)},
        )

    def revoke(self, delegation) -> int:
        return self._emit(
            "revoke",
            {"id": delegation.credential_id, "home": delegation.home_entity},
        )

    def since(self, seqno: int) -> list[tuple[int, str, dict]]:
        """Every update with sequence number strictly greater than ``seqno``."""
        return [u for u in self._updates if u[0] > seqno]


@dataclass(slots=True)
class RecoveryReport:
    """Deterministic accounting for one recovery pass."""

    snapshot_creds: int
    wal_records_replayed: int
    torn_bytes: int
    catchup_updates: int
    cache_evicted: int
    cache_kept: int
    work_units: int
    """Records replayed + catch-up updates + incremental re-fold edges:
    the deterministic "recovery time" the bench reports instead of wall
    seconds."""

    def to_dict(self) -> dict[str, int]:
        return {
            "snapshot_creds": self.snapshot_creds,
            "wal_records_replayed": self.wal_records_replayed,
            "torn_bytes": self.torn_bytes,
            "catchup_updates": self.catchup_updates,
            "cache_evicted": self.cache_evicted,
            "cache_kept": self.cache_kept,
            "work_units": self.work_units,
        }


class DurableNode:
    """One crash-recoverable authorization node.

    ``engine`` is the node's :class:`~repro.drbac.engine.DrbacEngine`;
    ``cache`` its (optional) :class:`~repro.drbac.cache.CachedAuthorizer`
    — passed in so recovery can scrub it; ``feed`` the
    :class:`UpdateFeed` this node consumes (optional for WAL-only
    setups, required for catch-up after a torn tail).
    """

    def __init__(
        self,
        *,
        engine,
        cache=None,
        feed: UpdateFeed | None = None,
        disk: SimDisk | None = None,
        compact_every: int = 64,
        mutation: str | None = None,
    ) -> None:
        if mutation is not None and mutation not in MUTATIONS:
            raise ValueError(
                f"unknown recovery mutation {mutation!r}; pick from {MUTATIONS}"
            )
        self.engine = engine
        self.cache = cache
        self.feed = feed
        self.mutation = mutation
        self.disk = disk or SimDisk()
        self.wal = WriteAheadLog(self.disk, compact_every=compact_every)
        self.up = True
        self.last_seqno = 0
        self.recoveries = 0
        # Ordered durable-state mirror, rebuilt from disk on recovery:
        # publish order matters (repository bucket order and incremental
        # folds are order-sensitive), so a dict in insertion order.
        self._creds: dict[str, dict] = {}
        self._revoked: list[list] = []
        self._revoked_ids: set[str] = set()
        if feed is not None:
            feed.subscribe(self._on_update)

    # -- live path ----------------------------------------------------------

    def _on_update(self, seq: int, kind: str, payload: dict) -> None:
        if not self.up:
            return  # missed while down; catch-up pulls it on restart
        self._log(seq, kind, payload)
        self._apply(kind, payload)

    def _log(self, seq: int, kind: str, payload: dict) -> None:
        self.wal.append({"seq": seq, "kind": kind, "payload": payload})
        self.last_seqno = seq
        self._fold(seq, kind, payload)
        self.wal.maybe_compact(self._snapshot_payload)

    def _fold(self, seq: int, kind: str, payload: dict) -> None:
        """Fold one update into the in-memory durable-state mirror."""
        if kind == "publish":
            self._creds.setdefault(payload["cred"]["id"], payload)
        elif kind == "revoke":
            if payload["id"] not in self._revoked_ids:
                self._revoked_ids.add(payload["id"])
                self._revoked.append([payload["home"], payload["id"]])

    def _apply(self, kind: str, payload: dict) -> None:
        if kind == "publish":
            self.engine.repository.publish(
                delegation_from_wire(payload["cred"]),
                _tags_from_wire(payload["tags"]),
            )
        elif kind == "revoke":
            self.engine.revocations.authority(payload["home"]).revoke(payload["id"])

    def _snapshot_payload(self) -> dict:
        return {
            "seq": self.last_seqno,
            "creds": list(self._creds.values()),
            "revoked": list(self._revoked),
        }

    # -- crash / restart ----------------------------------------------------

    def crash(self) -> None:
        """Crash-stop: volatile state is dead; only the disk survives."""
        self.up = False
        self._creds = {}
        self._revoked = []
        self._revoked_ids = set()

    def restart(self, *, torn_tail_bytes: int = 0) -> RecoveryReport:
        """Come back from a crash, optionally with a torn WAL tail."""
        if torn_tail_bytes:
            self.wal.truncate_tail(torn_tail_bytes)
        return self.recover()

    def recover(self) -> RecoveryReport:
        """The recovery protocol; safe to run again on a live node.

        Replay is idempotent: recovering twice from the same durable
        state produces the identical engine state, because every step
        rebuilds from the disk image rather than mutating leftovers.
        """
        engine = self.engine
        incr = engine.incremental
        work_before = incr.work if incr is not None else 0

        snapshot, records, torn_bytes = self.wal.load()

        # Fold durable history into a fresh mirror.
        self._creds = {}
        self._revoked = []
        self._revoked_ids = set()
        self.last_seqno = 0
        if snapshot is not None:
            self.last_seqno = int(snapshot["seq"])
            for cred_payload in snapshot["creds"]:
                self._creds.setdefault(cred_payload["cred"]["id"], cred_payload)
            for home, cred_id in snapshot["revoked"]:
                if cred_id not in self._revoked_ids:
                    self._revoked_ids.add(cred_id)
                    self._revoked.append([home, cred_id])
        for record in records:
            self.last_seqno = max(self.last_seqno, int(record["seq"]))
            self._fold(int(record["seq"]), record["kind"], record["payload"])

        # Scrub every volatile structure in place (object identity is
        # shared with guards and views, so we reset rather than rebuild).
        engine.monitor_hub.reset()
        engine.revocations.reset()
        engine.repository.reset_state()
        if incr is not None:
            incr.reset()

        # Revocations first: the incremental engine's publish gate then
        # skips dead credentials instead of folding and re-killing them.
        for home, cred_id in self._revoked:
            engine.revocations.authority(home).revoke(cred_id)
        for payload in self._creds.values():
            self._apply("publish", payload)
        obs.counter(metric_names.RECOVER_REPLAYED).inc(len(records))

        # Delta catch-up: pull exactly the gap the node missed while
        # down (or lost to the torn tail) from the live replica.
        catchup = 0
        if self.feed is not None and self.mutation != "skip-catchup":
            for seq, kind, payload in self.feed.since(self.last_seqno):
                self._log(seq, kind, payload)
                self._apply(kind, payload)
                catchup += 1
        obs.counter(metric_names.RECOVER_CATCHUP).inc(catchup)

        # Conservative cache scrub: keep only entries provable from the
        # recovered (and caught-up) state, re-watching their credentials.
        evicted = kept = 0
        if self.cache is not None:
            evicted, kept = self.cache.recover(published=self.published_ids())
        obs.counter(metric_names.RECOVER_CACHE_EVICTED).inc(evicted)
        obs.counter(metric_names.RECOVER_CACHE_KEPT).inc(kept)

        self.up = True
        self.recoveries += 1
        work_units = (
            len(records)
            + catchup
            + ((incr.work - work_before) if incr is not None else 0)
        )
        obs.counter(metric_names.RECOVER_RESTARTS).inc()
        obs.histogram(
            metric_names.RECOVER_WORK, metric_names.COUNT_BUCKETS
        ).observe(work_units)
        report = RecoveryReport(
            snapshot_creds=len(snapshot["creds"]) if snapshot is not None else 0,
            wal_records_replayed=len(records),
            torn_bytes=torn_bytes,
            catchup_updates=catchup,
            cache_evicted=evicted,
            cache_kept=kept,
            work_units=work_units,
        )
        obs.event(
            "durable.recovered", seq=self.last_seqno,
            replayed=report.wal_records_replayed, catchup=catchup,
            torn_bytes=torn_bytes,
        )
        return report

    # -- introspection ------------------------------------------------------

    def published_ids(self) -> frozenset[str]:
        """Credential ids the node currently holds as published."""
        return frozenset(self._creds)

    def state_payload(self) -> dict[str, Any]:
        """JSON-compatible view of the durable state (order-sensitive)."""
        return {
            "seq": self.last_seqno,
            "creds": list(self._creds),
            "revoked": sorted(self._revoked_ids),
        }

    def state_digest(self) -> str:
        return digest_state(self.state_payload())
