"""Length+CRC framed write-ahead log with snapshot + compaction.

Frame layout, one record::

    +----------------+----------------+------------------------+
    | length (4B BE) | crc32 (4B BE)  | payload (JSON, length) |
    +----------------+----------------+------------------------+

The payload is ``json.dumps(record, sort_keys=True)`` so identical
records produce identical bytes.  Decoding walks frames front to back
and stops at the first one that is short, fails its checksum, or does
not parse — everything before it is a **valid prefix** of history,
everything after is discarded as the torn tail.  That prefix property is
what makes torn-tail truncation safe: recovery can only lose the newest
suffix of updates, never see a corrupted or reordered one, and the
sequence-numbered catch-up pulls the lost suffix back from a live
replica.

Compaction: every ``compact_every`` appended records the log asks its
owner for a snapshot payload, installs it atomically in the snapshot
area, and truncates the WAL area to empty.  The snapshot is itself one
framed record, so a damaged snapshot is *detected* (checksum) rather
than trusted.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Callable

from .. import obs
from ..obs import names as metric_names
from .disk import SimDisk

_HEADER = struct.Struct(">II")

WalRecord = dict
"""One logged update: a JSON-compatible dict."""


def encode_record(payload: WalRecord) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


def decode_records(data: bytes) -> tuple[list[WalRecord], int, int]:
    """Decode the longest valid frame prefix of ``data``.

    Returns ``(records, consumed_bytes, torn_bytes)``: ``consumed_bytes``
    is where the valid prefix ends and ``torn_bytes`` is whatever trailed
    it (0 for a cleanly closed log).  Never raises on damaged input —
    damage terminates the walk, it does not poison the prefix.
    """
    records: list[WalRecord] = []
    offset = 0
    total = len(data)
    while total - offset >= _HEADER.size:
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > total:
            break  # torn mid-payload
        body = data[start:end]
        if zlib.crc32(body) != crc:
            break  # torn or corrupted frame
        try:
            record = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        if not isinstance(record, dict):
            break
        records.append(record)
        offset = end
    return records, offset, total - offset


class WriteAheadLog:
    """Append-only framed log over one :class:`SimDisk`, with snapshots.

    The owner drives it: :meth:`append` after every durable update, then
    :meth:`maybe_compact` with a callable producing the full-state
    snapshot payload.  :meth:`load` is the recovery entry point.
    """

    def __init__(
        self,
        disk: SimDisk,
        *,
        area: str = "wal",
        snapshot_area: str = "snapshot",
        compact_every: int = 64,
    ) -> None:
        if compact_every < 1:
            raise ValueError(f"compact_every must be >= 1, got {compact_every}")
        self.disk = disk
        self.area = area
        self.snapshot_area = snapshot_area
        self.compact_every = compact_every
        # Derived, not authoritative: recomputed from disk on load, so a
        # crash cannot leave it out of sync with the bytes.
        self._records_since_snapshot = len(decode_records(disk.read(area))[0])

    @property
    def records_since_snapshot(self) -> int:
        return self._records_since_snapshot

    def append(self, payload: WalRecord) -> None:
        frame = encode_record(payload)
        self.disk.append(self.area, frame)
        self._records_since_snapshot += 1
        obs.counter(metric_names.DURABLE_WAL_APPENDS).inc()
        obs.counter(metric_names.DURABLE_WAL_BYTES).inc(len(frame))
        obs.gauge(metric_names.DURABLE_WAL_RECORDS).set(
            self._records_since_snapshot
        )

    def maybe_compact(self, snapshot_payload: Callable[[], WalRecord]) -> bool:
        """Snapshot + truncate once ``compact_every`` records accumulated."""
        if self._records_since_snapshot < self.compact_every:
            return False
        self.disk.replace(self.snapshot_area, encode_record(snapshot_payload()))
        self.disk.replace(self.area, b"")
        self._records_since_snapshot = 0
        obs.counter(metric_names.DURABLE_SNAPSHOTS).inc()
        obs.gauge(metric_names.DURABLE_WAL_RECORDS).set(0)
        return True

    def truncate_tail(self, nbytes: int) -> int:
        """Inject a torn tail: drop ``nbytes`` off the WAL area's end."""
        return self.disk.truncate_tail(self.area, nbytes)

    def load(self) -> tuple[WalRecord | None, list[WalRecord], int]:
        """Recover ``(snapshot, records, torn_records_dropped)`` from disk.

        ``snapshot`` is ``None`` when no (valid) snapshot exists.  The
        returned records are the valid WAL prefix; any torn suffix is
        counted against the log's byte length and reported as the number
        of *whole records* known lost only indirectly — the caller learns
        the byte damage and the catch-up protocol repairs the difference
        regardless of how many records it spanned.
        """
        snapshot: WalRecord | None = None
        snap_records, _, _ = decode_records(self.disk.read(self.snapshot_area))
        if snap_records:
            snapshot = snap_records[0]
        records, consumed, torn_bytes = decode_records(self.disk.read(self.area))
        if torn_bytes:
            # Discard the unusable suffix so future appends start on a
            # frame boundary instead of extending garbage.
            self.disk.truncate_tail(self.area, torn_bytes)
            obs.counter(metric_names.DURABLE_TORN_TAILS).inc()
            obs.counter(metric_names.DURABLE_TORN_BYTES).inc(torn_bytes)
        self._records_since_snapshot = len(records)
        obs.gauge(metric_names.DURABLE_WAL_RECORDS).set(len(records))
        return snapshot, records, torn_bytes


def digest_state(payload: Any) -> str:
    """Stable digest of a JSON-compatible state (test/bench helper)."""
    import hashlib

    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()
