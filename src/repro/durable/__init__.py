"""Durable crash-recovery for the dRBAC repository (log + snapshot + catch-up).

The paper's repository and monitors assume long-lived nodes; the chaos
harness originally modelled ``NODE_CRASH`` as a crash-stop whose heal
magically restored every piece of volatile state.  This package makes
restart a *real, lossy, replayable* event, in the standard shape used by
ARIES-style engines and Bayou-style anti-entropy:

* :class:`SimDisk` — the in-memory "disk": named byte areas that survive
  a node crash, with seeded torn-tail truncation as the only fault mode.
* :class:`WriteAheadLog` — append-only, length+CRC framed JSON records
  over a disk area, with periodic snapshot + compaction.  Decoding stops
  at the first damaged frame, so a torn tail recovers a valid *prefix*
  of history, never a corrupt record.
* :class:`UpdateFeed` — the live-replica side: every publish/revoke gets
  a monotonic sequence number, so a recovering node can pull exactly the
  gap ``(last_durable_seqno, peer_seqno]`` it missed while down.
* :class:`DurableNode` — bundles an engine (and optionally its cache)
  with a WAL and a feed; :meth:`DurableNode.crash` drops volatile state,
  :meth:`DurableNode.restart` replays snapshot+WAL, rebuilds the
  incremental engine's indexes, re-subscribes monitor callbacks, evicts
  every cache entry not provable from durable state, and catches up from
  the feed before serving.

``DurableNode(mutation="skip-catchup")`` deliberately breaks the
catch-up rule — the documented hook the differential drill uses to prove
the simulation tester notices a broken recovery path.
"""

from .disk import SimDisk
from .node import MUTATIONS, DurableNode, RecoveryReport, UpdateFeed
from .wal import WalRecord, WriteAheadLog, decode_records, encode_record

__all__ = [
    "SimDisk",
    "WriteAheadLog",
    "WalRecord",
    "encode_record",
    "decode_records",
    "UpdateFeed",
    "DurableNode",
    "RecoveryReport",
    "MUTATIONS",
]
