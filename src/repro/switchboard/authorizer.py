"""Authorization suites for Switchboard connections (Section 4.3).

"Prior to forming a Switchboard connection, the components at either end
provide their authorization suites — PKI identities (including private
keys for authentication), dRBAC credentials to be supplied to the partner,
and Authorizer objects for evaluating the partner's credentials.
Authorizers generate AuthorizationMonitors, which inform either partner
when the trust relationship changes."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..crypto.keys import Identity, PublicIdentity
from ..drbac.delegation import Delegation
from ..drbac.engine import DrbacEngine
from ..drbac.model import Attributes, EntityRef, Role
from ..drbac.monitor import ProofMonitor
from ..drbac.proof import Proof
from ..errors import HandshakeError

ChangeCallback = Callable[[str], None]
"""Called with the credential id that changed the trust relationship."""


class AuthorizationMonitor:
    """Live view of one partner's authorization state.

    Wraps the dRBAC :class:`~repro.drbac.monitor.ProofMonitor` when a proof
    backs the authorization; trivially valid monitors (accept-all policies)
    have no proof and never fire.
    """

    def __init__(self, proof: Optional[Proof], proof_monitor: Optional[ProofMonitor]) -> None:
        self.proof = proof
        self._proof_monitor = proof_monitor
        self._callbacks: list[ChangeCallback] = []
        if proof_monitor is not None:
            proof_monitor.on_invalidated(self._fire)

    @property
    def valid(self) -> bool:
        return self._proof_monitor is None or self._proof_monitor.valid

    def on_change(self, callback: ChangeCallback) -> None:
        self._callbacks.append(callback)
        if not self.valid and self._proof_monitor is not None:
            invalidated = self._proof_monitor.invalidated_by
            if invalidated is not None:
                callback(invalidated)

    def check_expiry(self, now: float) -> bool:
        """Re-evaluate credential expiry at ``now``; fires change
        callbacks (via the proof monitor) when something lapsed."""
        if self._proof_monitor is None:
            return True
        return self._proof_monitor.check_expiry(now)

    def close(self) -> None:
        if self._proof_monitor is not None:
            self._proof_monitor.close()

    def _fire(self, credential_id: str) -> None:
        for callback in list(self._callbacks):
            callback(credential_id)


class Authorizer:
    """Policy object evaluating a partner's identity and credentials."""

    def authorize(
        self, partner: PublicIdentity, credentials: list[Delegation]
    ) -> AuthorizationMonitor:
        """Return a monitor on success; raise :class:`HandshakeError` when
        the partner is not acceptable."""
        raise NotImplementedError


class AcceptAllAuthorizer(Authorizer):
    """No policy: accept any authenticated partner (test fixtures, and the
    client side of anonymous public services)."""

    def authorize(
        self, partner: PublicIdentity, credentials: list[Delegation]
    ) -> AuthorizationMonitor:
        return AuthorizationMonitor(proof=None, proof_monitor=None)


class RoleAuthorizer(Authorizer):
    """Require the partner to prove possession of a role (with attributes).

    The standard PSF policy: cross-domain partners are acceptable exactly
    when dRBAC can chain their presented credentials to a role local to
    this domain.  The returned monitor tracks every credential in the
    proof, so a mid-session revocation anywhere along the chain invalidates
    the trust relationship.
    """

    def __init__(
        self,
        engine: DrbacEngine,
        required_role: Role | str,
        *,
        required_attributes: Attributes | None = None,
    ) -> None:
        self.engine = engine
        self.required_role = (
            Role.parse(required_role) if isinstance(required_role, str) else required_role
        )
        self.required_attributes = required_attributes

    def authorize(
        self, partner: PublicIdentity, credentials: list[Delegation]
    ) -> AuthorizationMonitor:
        # Presented credentials are combined with repository-resident ones:
        # the partner supplies its leaf credentials, the repository holds
        # the cross-domain mapping delegations.
        harvested = self.engine.repository.collect(
            EntityRef(partner.name), self.required_role
        )
        pool = {c.credential_id: c for c in harvested}
        for credential in credentials:
            pool[credential.credential_id] = credential
        proof = self.engine.find_proof(
            EntityRef(partner.name),
            self.required_role,
            list(pool.values()),
            required_attributes=self.required_attributes,
        )
        if proof is None:
            raise HandshakeError(
                f"partner {partner.name!r} failed to prove {self.required_role}"
            )
        proof_monitor = ProofMonitor(proof.all_delegations(), self.engine.revocations)
        return AuthorizationMonitor(proof=proof, proof_monitor=proof_monitor)


@dataclass
class AuthorizationSuite:
    """Everything one endpoint contributes to a Switchboard handshake."""

    identity: Identity
    credentials: list[Delegation] = field(default_factory=list)
    authorizer: Authorizer = field(default_factory=AcceptAllAuthorizer)
