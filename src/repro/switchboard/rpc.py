"""RPC machinery: futures, plain (RMI-style) remote calls, and dispatch.

Two transport personalities share this module:

* :class:`PlainRpcEndpoint` — the stand-in for Java RMI.  Frames are
  plaintext JSON; anyone observing an insecure link reads arguments and
  results verbatim.  Views whose interfaces are typed ``rmi`` route
  through this.
* :class:`~repro.switchboard.channel.SwitchboardConnection` — reuses
  :class:`PendingCall` and the dispatch helpers but encrypts and
  sequence-protects every frame.

The simulation is single-threaded over virtual time, so remote calls
return :class:`PendingCall` futures; :meth:`PendingCall.wait` pumps the
event scheduler until the result lands (only valid from driver code, not
from inside an event handler).
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .. import obs
from ..errors import NetworkError, RpcTimeoutError, SwitchboardError
from ..faults.retry import RetryPolicy
from ..net.events import EventScheduler
from ..net.transport import Transport
from ..obs import names as metric_names

_call_ids = itertools.count(1)

PLAIN_RPC_SERVICE = "rmi"


class RemoteError(SwitchboardError):
    """An exception raised by the remote method, re-raised locally."""


@dataclass
class PendingCall:
    """Future for an in-flight remote call."""

    call_id: int
    method: str
    done: bool = False
    started_at: Optional[float] = None
    """Scheduler time the call was sent; lets the channel layer record
    completion latency in virtual time."""
    _value: Any = None
    _error: Optional[str] = None
    _exception: Optional[Exception] = field(default=None, repr=False)
    _scheduler: EventScheduler | None = field(default=None, repr=False)

    def resolve(self, value: Any) -> None:
        self.done = True
        self._value = value

    def fail(self, message: str) -> None:
        self.done = True
        self._error = message

    def abort(self, exc: Exception) -> None:
        """Fail the call with a typed local exception (channel teardown)."""
        self.done = True
        self._exception = exc

    @property
    def value(self) -> Any:
        if not self.done:
            raise SwitchboardError(f"call {self.method!r} not complete")
        if self._exception is not None:
            raise self._exception
        if self._error is not None:
            raise RemoteError(self._error)
        return self._value

    def wait(
        self, *, timeout: float | None = None, max_events: int = 100_000
    ) -> Any:
        """Pump the scheduler until this call completes, then return.

        ``timeout`` bounds the wait in *virtual* seconds: when the
        scheduler advances past the budget without a result, the wait
        raises a typed :class:`~repro.errors.RpcTimeoutError` instead of
        blocking until the event queue drains (which, under fault
        injection, may be never for a call whose peer crashed).  A late
        response can still complete the call afterwards.
        """
        if self._scheduler is None:
            raise SwitchboardError("no scheduler attached; cannot wait")
        deadline = None if timeout is None else self._scheduler.now() + timeout
        steps = 0
        while not self.done:
            if deadline is not None and self._scheduler.now() >= deadline:
                obs.counter(metric_names.RPC_WAIT_TIMEOUTS).inc()
                raise RpcTimeoutError(
                    f"call {self.method!r} still pending after {timeout}s"
                )
            if not self._scheduler.step():
                raise SwitchboardError(
                    f"event queue drained before call {self.method!r} completed"
                )
            steps += 1
            if steps > max_events:
                raise SwitchboardError(
                    f"call {self.method!r} did not complete within {max_events} events"
                )
        return self.value


class ObjectExporter:
    """Name → object table with safe method dispatch.

    Dispatch refuses private names and non-callable attributes so a remote
    caller cannot walk into implementation details.
    """

    def __init__(self) -> None:
        self._objects: dict[str, Any] = {}

    def export(self, name: str, obj: Any) -> None:
        self._objects[name] = obj

    def unexport(self, name: str) -> None:
        self._objects.pop(name, None)

    def exported_names(self) -> list[str]:
        return sorted(self._objects)

    def dispatch(self, target: str, method: str, args: list) -> Any:
        obj = self._objects.get(target)
        if obj is None:
            raise SwitchboardError(f"no exported object {target!r}")
        if method.startswith("_"):
            raise SwitchboardError(f"refusing to call private method {method!r}")
        fn = getattr(obj, method, None)
        if not callable(fn):
            raise SwitchboardError(f"{target!r} has no callable method {method!r}")
        return fn(*args)


class PlainRpcEndpoint:
    """Unencrypted request/response RPC bound to one simulated node.

    The Java-RMI stand-in: method name, arguments, and results cross the
    network as readable JSON.
    """

    def __init__(self, transport: Transport, node_name: str) -> None:
        self.transport = transport
        self.node_name = node_name
        self.exporter = ObjectExporter()
        self._pending: dict[int, PendingCall] = {}
        transport.network.node(node_name).bind(PLAIN_RPC_SERVICE, self._on_frame)

    # -- client side --------------------------------------------------------

    def call(
        self, remote_node: str, target: str, method: str, args: list | None = None
    ) -> PendingCall:
        call_id = next(_call_ids)
        pending = PendingCall(
            call_id=call_id, method=method, _scheduler=self.transport.scheduler
        )
        self._pending[call_id] = pending
        frame = {
            "type": "call",
            "call_id": call_id,
            "reply_to": self.node_name,
            "target": target,
            "method": method,
            "args": args or [],
        }

        def dropped(exc: Exception) -> None:
            # Fail fast: a request that died in flight (link down, node
            # crashed) can never produce a response; unblock the caller.
            if not pending.done:
                self._pending.pop(call_id, None)
                pending.abort(exc)

        try:
            self.transport.send(
                self.node_name,
                remote_node,
                PLAIN_RPC_SERVICE,
                encode_frame(frame),
                on_dropped=dropped,
            )
        except NetworkError as exc:
            del self._pending[call_id]
            pending.fail(str(exc))
        return pending

    def call_sync(
        self, remote_node: str, target: str, method: str, args: list | None = None
    ) -> Any:
        return self.call(remote_node, target, method, args).wait()

    def call_with_retry(
        self,
        remote_node: str,
        target: str,
        method: str,
        args: list | None = None,
        *,
        timeout: float = 1.0,
        retries: int = 3,
        policy: RetryPolicy | None = None,
    ) -> PendingCall:
        """At-least-once invocation over lossy or failing links.

        Re-sends the same call (same call id, so a late original response
        still completes it) when no response arrives in time.  Pacing
        comes from a :class:`~repro.faults.retry.RetryPolicy` — pass one
        for exponential backoff with seeded jitter and a deadline; the
        default reproduces the legacy shape (``retries`` re-sends every
        ``timeout`` seconds).  A transmission that fails outright (link
        down, partition) is treated like a lost frame and retried on the
        same schedule, which is what lets callers ride out a fault window.
        The remote method may execute more than once — callers pick this
        for idempotent operations; exactly-once semantics belong to the
        Switchboard layer's sequencing.
        """
        if policy is None:
            policy = RetryPolicy.fixed(timeout, retries)
        schedule = policy.schedule()
        call_id = next(_call_ids)
        pending = PendingCall(
            call_id=call_id, method=method, _scheduler=self.transport.scheduler
        )
        self._pending[call_id] = pending
        frame = encode_frame(
            {
                "type": "call",
                "call_id": call_id,
                "reply_to": self.node_name,
                "target": target,
                "method": method,
                "args": args or [],
            }
        )

        def give_up() -> None:
            self._pending.pop(call_id, None)
            obs.counter(metric_names.RPC_RETRIES_EXHAUSTED).inc()
            pending.fail(
                f"no response from {remote_node}/{target}.{method} after "
                f"{schedule.attempts_made} attempts"
            )

        def transmit(*, is_retry: bool) -> None:
            if is_retry:
                obs.counter(metric_names.RPC_RETRIES).inc()
            try:
                self.transport.send(self.node_name, remote_node, PLAIN_RPC_SERVICE, frame)
            except NetworkError:
                # No route right now; keep the schedule ticking — the
                # fault may heal before the attempts run out.
                pass
            wait = schedule.next_delay()
            if wait is None:
                # That was the final attempt: give its response one more
                # interval to land, then give up.
                self.transport.scheduler.schedule(policy.max_delay, finalize)
            else:
                self.transport.scheduler.schedule(wait, check)

        def check() -> None:
            if not pending.done:
                transmit(is_retry=True)

        def finalize() -> None:
            if not pending.done:
                give_up()

        transmit(is_retry=False)
        return pending

    # -- server side ---------------------------------------------------------

    def _on_frame(self, payload: bytes, sender: str) -> None:
        frame = decode_frame(payload)
        kind = frame.get("type")
        if kind == "call":
            self._serve(frame)
        elif kind == "result":
            self._complete(frame)
        else:
            raise SwitchboardError(f"unknown RPC frame type {kind!r}")

    def _serve(self, frame: dict) -> None:
        response: dict[str, Any] = {"type": "result", "call_id": frame["call_id"]}
        try:
            response["value"] = self.exporter.dispatch(
                frame["target"], frame["method"], frame.get("args", [])
            )
        except Exception as exc:  # noqa: BLE001 - errors cross the wire as text
            response["error"] = f"{type(exc).__name__}: {exc}"
        try:
            self.transport.send(
                self.node_name, frame["reply_to"], PLAIN_RPC_SERVICE, encode_frame(response)
            )
        except NetworkError:
            # The caller's route died while we serviced the request; an
            # unroutable response is indistinguishable from a lost frame,
            # and the caller's retry machinery owns the recovery.
            pass

    def _complete(self, frame: dict) -> None:
        pending = self._pending.pop(frame["call_id"], None)
        if pending is None:
            return  # response for a forgotten call
        if "error" in frame:
            pending.fail(frame["error"])
        else:
            pending.resolve(frame.get("value"))


def encode_frame(frame: dict) -> bytes:
    return json.dumps(frame, separators=(",", ":")).encode()


def decode_frame(payload: bytes) -> dict:
    try:
        frame = json.loads(payload.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise SwitchboardError(f"undecodable RPC frame: {exc}") from exc
    if not isinstance(frame, dict):
        raise SwitchboardError("RPC frame must be a JSON object")
    return frame
