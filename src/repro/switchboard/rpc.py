"""RPC machinery: futures, plain (RMI-style) remote calls, and dispatch.

Two transport personalities share this module:

* :class:`PlainRpcEndpoint` — the stand-in for Java RMI.  Frames are
  plaintext JSON; anyone observing an insecure link reads arguments and
  results verbatim.  Views whose interfaces are typed ``rmi`` route
  through this.
* :class:`~repro.switchboard.channel.SwitchboardConnection` — reuses
  :class:`PendingCall` and the dispatch helpers but encrypts and
  sequence-protects every frame.

The simulation is single-threaded over virtual time, so remote calls
return :class:`PendingCall` futures; :meth:`PendingCall.wait` pumps the
event scheduler until the result lands (only valid from driver code, not
from inside an event handler).
"""

from __future__ import annotations

import heapq
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .. import obs
from ..errors import NetworkError, RpcShedError, RpcTimeoutError, SwitchboardError
from ..faults.retry import RetryPolicy
from ..flow import AimdLimiter, CircuitBreaker, FlowConfig, FlowController, Shed
from ..net.events import EventScheduler
from ..net.transport import Transport
from ..obs import names as metric_names

PLAIN_RPC_SERVICE = "rmi"


class CallIdPool:
    """Correlation-id allocator with smallest-first reuse.

    Completed calls hand their id back, so a long-lived endpoint cycles
    through a small, stable id set instead of growing a process-global
    counter forever.  Stable ids keep frame byte-sizes (and therefore
    simulated transfer delays) independent of how much traffic preceded a
    run — the property the chaos and load harnesses rely on for
    byte-identical reports.

    Ids acquired with ``reusable=False`` are never recycled: an
    at-least-once retried call can see a *duplicate* late response, and a
    recycled id would let that duplicate complete an unrelated call.
    """

    def __init__(self) -> None:
        self._free: list[int] = []
        self._next = 1
        self._reusable: set[int] = set()

    def acquire(self, *, reusable: bool = True) -> int:
        if reusable and self._free:
            call_id = heapq.heappop(self._free)
        else:
            call_id = self._next
            self._next += 1
        if reusable:
            self._reusable.add(call_id)
        return call_id

    def release(self, call_id: int) -> None:
        """Return a reusable id to the pool; ignores non-reusable ids."""
        if call_id in self._reusable:
            self._reusable.discard(call_id)
            heapq.heappush(self._free, call_id)

    @property
    def high_water(self) -> int:
        """Largest id ever allocated (pipelining keeps this bounded)."""
        return self._next - 1


class RemoteError(SwitchboardError):
    """An exception raised by the remote method, re-raised locally."""


@dataclass
class PendingCall:
    """Future for an in-flight remote call."""

    call_id: int
    method: str
    done: bool = False
    started_at: Optional[float] = None
    """Scheduler time the call was sent; lets the channel layer record
    completion latency in virtual time."""
    span: Optional[obs.Span] = field(default=None, repr=False)
    """Client-side span covering issue → completion (dist tracing only);
    the completion paths below finish it and tag failures ``error=<type>``."""
    on_shed: Optional[Callable[[float, dict], None]] = field(
        default=None, repr=False
    )
    """Overload hook: a shed response normally aborts the call with a
    typed :class:`~repro.errors.RpcShedError`; a retry loop installs this
    to consume ``(retry_after, shed_info)`` and keep the call pending so
    the same call id can be retransmitted after the hint expires."""
    _value: Any = None
    _error: Optional[str] = None
    _exception: Optional[Exception] = field(default=None, repr=False)
    _scheduler: EventScheduler | None = field(default=None, repr=False)
    _callbacks: list[Callable[["PendingCall"], None]] = field(
        default_factory=list, repr=False
    )

    def add_done_callback(self, fn: Callable[["PendingCall"], None]) -> None:
        """Run ``fn(self)`` when the call completes (now, if already done).

        This is what lets :class:`RpcPipeline` refill its window the
        moment a slot frees, instead of polling futures.
        """
        if self.done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _fire_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def resolve(self, value: Any) -> None:
        self.done = True
        self._value = value
        if self.span is not None:
            self.span.finish()
        self._fire_callbacks()

    def fail(self, message: str) -> None:
        self.done = True
        self._error = message
        if self.span is not None:
            if self.span.ok:
                self.span.set_error("RemoteError")
            self.span.finish()
        self._fire_callbacks()

    def abort(self, exc: Exception) -> None:
        """Fail the call with a typed local exception (channel teardown)."""
        self.done = True
        self._exception = exc
        if self.span is not None:
            if self.span.ok:
                self.span.set_error(type(exc).__name__)
            self.span.finish()
        self._fire_callbacks()

    @property
    def value(self) -> Any:
        if not self.done:
            raise SwitchboardError(f"call {self.method!r} not complete")
        if self._exception is not None:
            raise self._exception
        if self._error is not None:
            raise RemoteError(self._error)
        return self._value

    def wait(
        self, *, timeout: float | None = None, max_events: int = 100_000
    ) -> Any:
        """Pump the scheduler until this call completes, then return.

        ``timeout`` bounds the wait in *virtual* seconds: when the
        scheduler advances past the budget without a result, the wait
        raises a typed :class:`~repro.errors.RpcTimeoutError` instead of
        blocking until the event queue drains (which, under fault
        injection, may be never for a call whose peer crashed).  A late
        response can still complete the call afterwards.
        """
        self.wait_done(timeout=timeout, max_events=max_events)
        return self.value

    def wait_done(
        self, *, timeout: float | None = None, max_events: int = 100_000
    ) -> None:
        """Pump the scheduler until this call *completes* — success or
        failure — without consuming the result (so a caller collecting
        errors, like :meth:`RpcPipeline.drain`, does not raise here)."""
        if self._scheduler is None:
            raise SwitchboardError("no scheduler attached; cannot wait")
        deadline = None if timeout is None else self._scheduler.now() + timeout
        steps = 0
        while not self.done:
            if deadline is not None and self._scheduler.now() >= deadline:
                obs.counter(metric_names.RPC_WAIT_TIMEOUTS).inc()
                if self.span is not None and self.span.ok:
                    # Not finished: a late response may still complete the
                    # call, but the caller observed a timeout.
                    self.span.set_error("RpcTimeoutError")
                raise RpcTimeoutError(
                    f"call {self.method!r} still pending after {timeout}s"
                )
            if not self._scheduler.step():
                raise SwitchboardError(
                    f"event queue drained before call {self.method!r} completed"
                )
            steps += 1
            if steps > max_events:
                raise SwitchboardError(
                    f"call {self.method!r} did not complete within {max_events} events"
                )


class RpcPipeline:
    """Windowed pipelining over any ``PendingCall``-returning caller.

    Up to ``depth`` calls ride the wire at once; further calls queue
    locally and are issued the instant a slot frees, so the window never
    sits idle waiting for a drain.  Completions may land out of order
    (correlation ids pair responses with calls); :meth:`results` and
    :meth:`drain` always report in **issue order**, which is what makes a
    pipelined run byte-comparable with a serial one — the differential
    guarantee ``tests/load/test_pipeline_differential.py`` checks.
    """

    def __init__(
        self,
        caller: Callable[..., "PendingCall"],
        scheduler: EventScheduler,
        *,
        depth: int = 8,
        limiter: AimdLimiter | None = None,
    ) -> None:
        if depth < 1:
            raise SwitchboardError(f"pipeline depth must be >= 1, got {depth}")
        self._caller = caller
        self._scheduler = scheduler
        self.depth = depth
        self.limiter = limiter
        self.in_flight = 0
        self._order: list[PendingCall] = []
        self._backlog: deque[tuple[PendingCall, tuple, dict]] = deque()

    @property
    def window(self) -> int:
        """The current issue window: ``depth`` is the hard cap, and an
        attached AIMD limiter clamps it further — client-side
        backpressure, where rising observed latency shrinks how much the
        client offers instead of piling more onto a struggling server."""
        if self.limiter is None:
            return self.depth
        return max(1, min(self.depth, self.limiter.limit))

    def call(self, *args, **kwargs) -> PendingCall:
        """Issue (or queue) one call; returns its future immediately.

        The returned future is a *shell* that mirrors the wire call's
        outcome, so callers hold a stable handle even while the call is
        still queued behind a full window.
        """
        shell = PendingCall(
            call_id=-(len(self._order) + 1),
            method=f"<pipelined#{len(self._order)}>",
            _scheduler=self._scheduler,
        )
        self._order.append(shell)
        self._backlog.append((shell, args, kwargs))
        obs.counter(metric_names.RPC_PIPELINE_CALLS).inc()
        self._pump()
        return shell

    def _pump(self) -> None:
        while self._backlog and self.in_flight < self.window:
            shell, args, kwargs = self._backlog.popleft()
            try:
                inner = self._caller(*args, **kwargs)
            except Exception as exc:  # noqa: BLE001 - surface via the future
                shell.abort(exc)
                continue
            self.in_flight += 1
            obs.histogram(metric_names.RPC_PIPELINE_DEPTH).observe(self.in_flight)
            issued_at = self._scheduler.now()
            inner.add_done_callback(
                lambda done, shell=shell, issued_at=issued_at: self._settle(
                    shell, done, issued_at
                )
            )

    def _settle(
        self, shell: PendingCall, inner: PendingCall, issued_at: float
    ) -> None:
        self.in_flight -= 1
        if self.limiter is not None:
            # A served call — even one whose method raised remotely — is
            # proof the server is keeping up; sheds, short-circuits, and
            # transport failures are not.
            self.limiter.observe(
                self._scheduler.now() - issued_at,
                ok=inner._exception is None,
            )
        if inner._exception is not None:
            shell.abort(inner._exception)
        elif inner._error is not None:
            shell.fail(inner._error)
        else:
            shell.resolve(inner._value)
        self._pump()

    @property
    def issued(self) -> int:
        return len(self._order)

    @property
    def outstanding(self) -> int:
        """Calls not yet completed (in flight or still queued)."""
        return sum(1 for shell in self._order if not shell.done)

    def drain(
        self,
        *,
        timeout: float | None = None,
        return_exceptions: bool = False,
        max_events: int = 1_000_000,
    ) -> list[Any]:
        """Pump the scheduler until every issued call completes.

        Returns results in issue order.  With ``return_exceptions`` a
        failed call contributes its exception object instead of raising,
        so one bad call cannot hide the results of its window-mates.
        """
        deadline = None if timeout is None else self._scheduler.now() + timeout
        for shell in self._order:
            remaining = (
                None if deadline is None else max(deadline - self._scheduler.now(), 0.0)
            )
            if not shell.done:
                if remaining is not None and remaining <= 0:
                    raise RpcTimeoutError(
                        f"pipeline drain exceeded {timeout}s with "
                        f"{self.outstanding} calls outstanding"
                    )
                shell.wait_done(timeout=remaining, max_events=max_events)
        return self.results(return_exceptions=return_exceptions)

    def results(self, *, return_exceptions: bool = False) -> list[Any]:
        """Issue-ordered outcomes of every completed call."""
        out: list[Any] = []
        for shell in self._order:
            try:
                out.append(shell.value)
            except Exception as exc:  # noqa: BLE001 - caller opted in
                if not return_exceptions:
                    raise
                out.append(exc)
        return out


class ObjectExporter:
    """Name → object table with safe method dispatch.

    Dispatch refuses private names and non-callable attributes so a remote
    caller cannot walk into implementation details.
    """

    def __init__(self) -> None:
        self._objects: dict[str, Any] = {}

    def export(self, name: str, obj: Any) -> None:
        self._objects[name] = obj

    def unexport(self, name: str) -> None:
        self._objects.pop(name, None)

    def exported_names(self) -> list[str]:
        return sorted(self._objects)

    def dispatch(self, target: str, method: str, args: list) -> Any:
        obj = self._objects.get(target)
        if obj is None:
            raise SwitchboardError(f"no exported object {target!r}")
        if method.startswith("_"):
            raise SwitchboardError(f"refusing to call private method {method!r}")
        fn = getattr(obj, method, None)
        if not callable(fn):
            raise SwitchboardError(f"{target!r} has no callable method {method!r}")
        return fn(*args)


class PlainRpcEndpoint:
    """Unencrypted request/response RPC bound to one simulated node.

    The Java-RMI stand-in: method name, arguments, and results cross the
    network as readable JSON.

    Built with a :class:`~repro.flow.FlowConfig`, the endpoint grows an
    overload-protection layer on both sides of the wire: arriving calls
    pass through a :class:`~repro.flow.FlowController` (rate limit →
    weighted fair queue → service slots) and may be *shed* with a
    retry-after hint; outgoing calls pass a per-remote-node
    :class:`~repro.flow.CircuitBreaker` that refuses locally while the
    peer is failing.  Without a config (the default) the serving path is
    byte-for-byte the pre-flow behaviour.
    """

    def __init__(
        self,
        transport: Transport,
        node_name: str,
        *,
        flow: FlowConfig | None = None,
    ) -> None:
        self.transport = transport
        self.node_name = node_name
        self.exporter = ObjectExporter()
        self.flow = flow
        self.controller: FlowController | None = (
            FlowController(flow, transport.scheduler, name=node_name)
            if flow is not None
            else None
        )
        self._breakers: dict[str, CircuitBreaker] = {}
        self._pending: dict[int, PendingCall] = {}
        self._ids = CallIdPool()
        transport.network.node(node_name).bind(PLAIN_RPC_SERVICE, self._on_frame)

    # -- flow control ---------------------------------------------------------

    def _breaker_for(self, remote_node: str) -> CircuitBreaker | None:
        cfg = self.flow
        if cfg is None or not (cfg.enabled and cfg.breaker_enabled):
            return None
        breaker = self._breakers.get(remote_node)
        if breaker is None:
            breaker = CircuitBreaker(
                self.transport.scheduler,
                failure_threshold=cfg.breaker_failures,
                window_s=cfg.breaker_window_s,
                open_s=cfg.breaker_open_s,
                half_open_probes=cfg.breaker_probes,
                name=f"{self.node_name}->{remote_node}",
            )
            self._breakers[remote_node] = breaker
        return breaker

    def _short_circuit(
        self, remote_node: str, method: str, breaker: CircuitBreaker
    ) -> PendingCall:
        """Refuse a call locally: nothing touches the wire while the
        breaker is open, which is the whole point — give the failing peer
        its recovery window instead of feeding it more traffic."""
        obs.counter(metric_names.FLOW_BREAKER_SHORT_CIRCUITS).inc()
        pending = PendingCall(
            call_id=0, method=method, _scheduler=self.transport.scheduler
        )
        pending.abort(
            RpcShedError(
                f"circuit open for {remote_node}: call {method!r} refused locally",
                retry_after=breaker.retry_after(),
            )
        )
        return pending

    # -- client side --------------------------------------------------------

    def call(
        self, remote_node: str, target: str, method: str, args: list | None = None
    ) -> PendingCall:
        breaker = self._breaker_for(remote_node)
        if breaker is not None and not breaker.allow():
            return self._short_circuit(remote_node, method, breaker)
        call_id = self._ids.acquire()
        pending = PendingCall(
            call_id=call_id, method=method, _scheduler=self.transport.scheduler
        )
        self._pending[call_id] = pending
        frame = {
            "type": "call",
            "call_id": call_id,
            "reply_to": self.node_name,
            "target": target,
            "method": method,
            "args": args or [],
        }
        span = None
        if obs.dist_enabled():
            tracer = obs.get_tracer()
            span = tracer.start(
                "rpc.client", parent=tracer.current, node=self.node_name,
                peer=remote_node, target=target, method=method, call_id=call_id,
            )
            pending.span = span
            frame["tc"] = [span.trace_id, span.span_id]

        def dropped(exc: Exception) -> None:
            # Fail fast: a request that died in flight (link down, node
            # crashed) can never produce a response; unblock the caller.
            if not pending.done:
                self._pending.pop(call_id, None)
                self._ids.release(call_id)
                pending.abort(exc)

        try:
            if span is not None:
                # Activate so the transport's transmit/batch spans nest
                # under this call instead of floating as roots.
                with obs.get_tracer().activate(span):
                    self.transport.send(
                        self.node_name,
                        remote_node,
                        PLAIN_RPC_SERVICE,
                        encode_frame(frame),
                        on_dropped=dropped,
                    )
            else:
                self.transport.send(
                    self.node_name,
                    remote_node,
                    PLAIN_RPC_SERVICE,
                    encode_frame(frame),
                    on_dropped=dropped,
                )
        except NetworkError as exc:
            del self._pending[call_id]
            self._ids.release(call_id)
            if span is not None:
                span.set_error("NetworkError")
            if breaker is not None:
                breaker.on_failure()
            pending.fail(str(exc))
            return pending
        if breaker is not None:
            # Typed aborts — shed responses, dropped frames, teardown —
            # count against the breaker; a remote *response* of any kind
            # (even a remote exception) is proof of service.
            pending.add_done_callback(
                lambda done: breaker.on_failure()
                if done._exception is not None
                else breaker.on_success()
            )
        return pending

    def call_sync(
        self, remote_node: str, target: str, method: str, args: list | None = None
    ) -> Any:
        return self.call(remote_node, target, method, args).wait()

    def pipeline(
        self,
        remote_node: str,
        target: str,
        *,
        depth: int = 8,
        limiter: AimdLimiter | None = None,
    ) -> RpcPipeline:
        """A pipelined caller for one remote object: ``p.call(method, args)``.

        Keeps up to ``depth`` requests in flight; see :class:`RpcPipeline`.
        Pass an :class:`~repro.flow.AimdLimiter` to let observed latency
        clamp the window below ``depth`` (client-side backpressure).
        """
        return RpcPipeline(
            lambda method, args=None: self.call(remote_node, target, method, args),
            self.transport.scheduler,
            depth=depth,
            limiter=limiter,
        )

    def call_with_retry(
        self,
        remote_node: str,
        target: str,
        method: str,
        args: list | None = None,
        *,
        timeout: float = 1.0,
        retries: int = 3,
        policy: RetryPolicy | None = None,
    ) -> PendingCall:
        """At-least-once invocation over lossy or failing links.

        Re-sends the same call (same call id, so a late original response
        still completes it) when no response arrives in time.  Pacing
        comes from a :class:`~repro.faults.retry.RetryPolicy` — pass one
        for exponential backoff with seeded jitter and a deadline; the
        default reproduces the legacy shape (``retries`` re-sends every
        ``timeout`` seconds).  A transmission that fails outright (link
        down, partition) is treated like a lost frame and retried on the
        same schedule, which is what lets callers ride out a fault window.
        The remote method may execute more than once — callers pick this
        for idempotent operations; exactly-once semantics belong to the
        Switchboard layer's sequencing.

        Under flow control two extra behaviours kick in: a shed response
        from an overloaded server defers the next retransmission until
        its retry-after hint expires (instead of hammering the usual
        schedule), and an open circuit breaker refuses the call locally
        before anything touches the wire.
        """
        breaker = self._breaker_for(remote_node)
        if breaker is not None and not breaker.allow():
            return self._short_circuit(remote_node, method, breaker)
        if policy is None:
            policy = RetryPolicy.fixed(timeout, retries)
        schedule = policy.schedule()
        # Non-reusable id: retransmission means the remote may answer more
        # than once, and a late duplicate must never complete a newer call
        # that recycled the id.
        call_id = self._ids.acquire(reusable=False)
        pending = PendingCall(
            call_id=call_id, method=method, _scheduler=self.transport.scheduler
        )
        self._pending[call_id] = pending
        base_frame = {
            "type": "call",
            "call_id": call_id,
            "reply_to": self.node_name,
            "target": target,
            "method": method,
            "args": args or [],
        }
        frame = encode_frame(base_frame)
        span = None
        attempts = 0
        if obs.dist_enabled():
            tracer = obs.get_tracer()
            span = tracer.start(
                "rpc.client", parent=tracer.current, node=self.node_name,
                peer=remote_node, target=target, method=method,
                call_id=call_id, retrying=True,
            )
            pending.span = span

        earliest = 0.0  # virtual time before which retransmission must wait
        last_shed: Optional[float] = None
        gave_up = False

        def on_shed(retry_after: float, info: dict) -> None:
            # The server is alive but refusing work: honor its hint by
            # pushing the next retransmission past ``now + retry_after``
            # rather than re-sending on the usual cadence into a queue
            # that already refused us once.
            nonlocal earliest, last_shed
            last_shed = retry_after
            earliest = max(
                earliest, self.transport.scheduler.now() + retry_after
            )
            obs.counter(metric_names.FLOW_RETRY_AFTER_HONORED).inc()
            if breaker is not None:
                breaker.on_failure()

        pending.on_shed = on_shed
        if breaker is not None:
            pending.add_done_callback(
                # give_up and on_shed record their own failures; any other
                # completion means the remote actually served the call.
                lambda done: breaker.on_success()
                if done._exception is None and not gave_up
                else None
            )

        def give_up() -> None:
            nonlocal gave_up
            gave_up = True
            self._pending.pop(call_id, None)
            obs.counter(metric_names.RPC_RETRIES_EXHAUSTED).inc()
            obs.event(
                "rpc.exhausted", node=self.node_name, peer=remote_node,
                target=target, method=method, call_id=call_id,
                attempts=schedule.attempts_made,
            )
            if span is not None:
                span.set_error("RetriesExhausted")
            if breaker is not None:
                breaker.on_failure()
            if last_shed is not None:
                # Every attempt that got an answer was refused: surface
                # the overload as a typed error with the freshest hint,
                # not a generic no-response failure.
                pending.abort(
                    RpcShedError(
                        f"{remote_node}/{target}.{method} shed after "
                        f"{schedule.attempts_made} attempts",
                        retry_after=last_shed,
                    )
                )
            else:
                pending.fail(
                    f"no response from {remote_node}/{target}.{method} after "
                    f"{schedule.attempts_made} attempts"
                )

        def transmit(*, is_retry: bool) -> None:
            nonlocal attempts
            attempts += 1
            if is_retry:
                obs.counter(metric_names.RPC_RETRIES).inc()
                obs.event(
                    "rpc.retry", node=self.node_name, peer=remote_node,
                    target=target, method=method, call_id=call_id,
                    attempt=attempts,
                )
            payload = frame
            attempt_span = None
            if span is not None:
                # Each attempt is its own child span carrying the shared
                # correlation id; the wire frame carries the *attempt's*
                # context, so the server span stitches to the exact
                # transmission that reached it.
                attempt_span = obs.get_tracer().start(
                    "rpc.attempt", parent=span, node=self.node_name,
                    call_id=call_id, attempt=attempts, retry=is_retry,
                )
                payload = encode_frame(
                    {**base_frame, "tc": list(attempt_span.context())}
                )
            try:
                if attempt_span is not None:
                    with obs.get_tracer().activate(attempt_span):
                        self.transport.send(
                            self.node_name, remote_node, PLAIN_RPC_SERVICE, payload
                        )
                else:
                    self.transport.send(
                        self.node_name, remote_node, PLAIN_RPC_SERVICE, payload
                    )
            except NetworkError:
                # No route right now; keep the schedule ticking — the
                # fault may heal before the attempts run out.
                if breaker is not None:
                    breaker.on_failure()
                if attempt_span is not None:
                    attempt_span.set_error("NetworkError")
            finally:
                if attempt_span is not None:
                    attempt_span.finish()
            wait = schedule.next_delay()
            if wait is None:
                # That was the final attempt: give its response one more
                # interval to land, then give up.
                self.transport.scheduler.schedule(policy.max_delay, finalize)
            else:
                self.transport.scheduler.schedule(wait, check)

        def check() -> None:
            if pending.done:
                return
            now = self.transport.scheduler.now()
            if now < earliest:
                # A shed pushed the next attempt out past this wake-up;
                # park until the server's hint expires.
                self.transport.scheduler.schedule(earliest - now, check)
                return
            transmit(is_retry=True)

        def finalize() -> None:
            if not pending.done:
                give_up()

        transmit(is_retry=False)
        return pending

    # -- server side ---------------------------------------------------------

    def _on_frame(self, payload: bytes, sender: str) -> None:
        frame = decode_frame(payload)
        kind = frame.get("type")
        if kind == "call":
            self._serve(frame)
        elif kind == "result":
            self._complete(frame)
        else:
            raise SwitchboardError(f"unknown RPC frame type {kind!r}")

    def _serve(self, frame: dict) -> None:
        if self.controller is not None:
            shed = self.controller.submit(
                frame.get("reply_to", ""),
                frame["target"],
                frame["method"],
                lambda: self._execute(frame),
            )
            if shed is not None:
                self._send_shed(frame, shed)
            return
        self._execute(frame)

    def _send_shed(self, frame: dict, shed: Shed) -> None:
        """Refuse a call: a small result frame carrying the retry hint,
        so the caller backs off instead of timing out and retrying into
        the same overloaded queue."""
        response: dict[str, Any] = {
            "type": "result",
            "call_id": frame["call_id"],
            "shed": {
                "retry_after": round(shed.retry_after, 6),
                "reason": shed.reason,
                "class": shed.cls,
            },
        }
        if frame.get("tc") is not None:
            response["tc"] = frame["tc"]
        try:
            self.transport.send(
                self.node_name, frame["reply_to"], PLAIN_RPC_SERVICE,
                encode_frame(response),
            )
        except NetworkError:
            # An unroutable refusal is just a lost frame to the caller.
            pass

    def _execute(self, frame: dict) -> None:
        tc = frame.get("tc")
        span = None
        if tc is not None and obs.is_enabled():
            # Continue the propagated trace: this span is a local root
            # remote-parented to the client (or attempt) span that sent
            # the frame, so exports stitch both sides by shared trace id.
            span = obs.get_tracer().start(
                "rpc.server", remote=(tc[0], tc[1]), node=self.node_name,
                target=frame["target"], method=frame["method"],
                call_id=frame["call_id"],
            )
        response: dict[str, Any] = {"type": "result", "call_id": frame["call_id"]}
        if tc is not None:
            response["tc"] = tc
        try:
            if span is not None:
                # Dispatch under the server span so work done on the
                # call's behalf (proof search, view resolution) nests.
                with obs.get_tracer().activate(span):
                    response["value"] = self.exporter.dispatch(
                        frame["target"], frame["method"], frame.get("args", [])
                    )
            else:
                response["value"] = self.exporter.dispatch(
                    frame["target"], frame["method"], frame.get("args", [])
                )
        except Exception as exc:  # noqa: BLE001 - errors cross the wire as text
            if span is not None:
                span.set_error(type(exc).__name__)
            response["error"] = f"{type(exc).__name__}: {exc}"
        try:
            if span is not None:
                with obs.get_tracer().activate(span):
                    self.transport.send(
                        self.node_name, frame["reply_to"], PLAIN_RPC_SERVICE,
                        encode_frame(response),
                    )
            else:
                self.transport.send(
                    self.node_name, frame["reply_to"], PLAIN_RPC_SERVICE,
                    encode_frame(response),
                )
        except NetworkError:
            # The caller's route died while we serviced the request; an
            # unroutable response is indistinguishable from a lost frame,
            # and the caller's retry machinery owns the recovery.
            pass
        finally:
            if span is not None:
                span.finish()

    def _complete(self, frame: dict) -> None:
        shed = frame.get("shed")
        if shed is not None:
            self._complete_shed(frame, shed)
            return
        pending = self._pending.pop(frame["call_id"], None)
        if pending is None:
            return  # response for a forgotten call
        self._ids.release(frame["call_id"])
        if "error" in frame:
            pending.fail(frame["error"])
        else:
            pending.resolve(frame.get("value"))

    def _complete_shed(self, frame: dict, shed: dict) -> None:
        pending = self._pending.get(frame["call_id"])
        if pending is None or pending.done:
            return  # refusal for a forgotten (or already-failed) call
        retry_after = float(shed.get("retry_after", 0.0))
        if pending.on_shed is not None:
            # A retry loop owns this call: leave it registered — the same
            # call id will be retransmitted once the hint expires — and
            # hand the hint over.
            pending.on_shed(retry_after, shed)
            return
        self._pending.pop(frame["call_id"], None)
        self._ids.release(frame["call_id"])
        pending.abort(
            RpcShedError(
                f"call {pending.method!r} shed by remote "
                f"({shed.get('reason', '?')}); retry after {retry_after}s",
                retry_after=retry_after,
            )
        )


def encode_frame(frame: dict) -> bytes:
    return json.dumps(frame, separators=(",", ":")).encode()


def decode_frame(payload: bytes) -> dict:
    try:
        frame = json.loads(payload.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise SwitchboardError(f"undecodable RPC frame: {exc}") from exc
    if not isinstance(frame, dict):
        raise SwitchboardError("RPC frame must be a JSON object")
    return frame
