"""SwitchboardStream: secure, monitored byte transport (§4.3).

"A previous version of SwitchboardStream that provides secure and
monitored transport is described in [6]" — and the paper's channels
present "a custom socket on top of which Java RMI requests can be
routed."  This module supplies that socket personality over an
established :class:`~repro.switchboard.channel.SwitchboardConnection`:
ordered, chunked, encrypted byte streams with per-stream accounting,
EOF semantics, and backpressure-free delivery callbacks.

Streams inherit every channel property: frames are AEAD-sealed and
sequence-protected, and a revocation mid-transfer aborts the stream the
moment the channel flips to ``REVOKED``.
"""

from __future__ import annotations

import base64
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import ChannelClosedError, SwitchboardError

DEFAULT_CHUNK_SIZE = 16 * 1024

_stream_ids = itertools.count(1)


@dataclass
class StreamStats:
    chunks: int = 0
    bytes: int = 0
    eof: bool = False
    aborted: bool = False


class IncomingStream:
    """Receiver side of one stream: an ordered reassembly buffer."""

    def __init__(self, stream_id: str) -> None:
        self.stream_id = stream_id
        self.stats = StreamStats()
        self._chunks: list[bytes] = []
        self._consumed = 0
        self._listeners: list[Callable[[bytes], None]] = []
        self._eof_listeners: list[Callable[[], None]] = []

    # -- receiving -------------------------------------------------------

    def _deliver(self, chunk: bytes) -> None:
        self._chunks.append(chunk)
        self.stats.chunks += 1
        self.stats.bytes += len(chunk)
        for listener in list(self._listeners):
            listener(chunk)

    def _finish(self) -> None:
        self.stats.eof = True
        for listener in list(self._eof_listeners):
            listener()

    def _abort(self) -> None:
        self.stats.aborted = True
        self.stats.eof = True
        for listener in list(self._eof_listeners):
            listener()

    # -- consuming ---------------------------------------------------------

    def on_data(self, listener: Callable[[bytes], None]) -> None:
        self._listeners.append(listener)
        for chunk in self._chunks:
            listener(chunk)

    def on_eof(self, listener: Callable[[], None]) -> None:
        self._eof_listeners.append(listener)
        if self.stats.eof:
            listener()

    def read_all(self) -> bytes:
        """Everything received so far (regardless of EOF)."""
        return b"".join(self._chunks)

    def read(self, n: int = -1) -> bytes:
        """Consume up to ``n`` bytes from the buffer (all when ``-1``)."""
        data = b"".join(self._chunks)[self._consumed :]
        if n < 0 or n >= len(data):
            self._consumed += len(data)
            return data
        self._consumed += n
        return data[:n]

    @property
    def complete(self) -> bool:
        return self.stats.eof and not self.stats.aborted


class OutgoingStream:
    """Sender side: chunks writes into sealed channel frames."""

    def __init__(
        self,
        connection,
        stream_id: str,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        self.connection = connection
        self.stream_id = stream_id
        self.chunk_size = chunk_size
        self.stats = StreamStats()
        self._closed = False

    def write(self, data: bytes) -> int:
        """Send ``data`` as one or more sealed chunks; returns bytes sent."""
        if self._closed:
            raise SwitchboardError(f"stream {self.stream_id} already closed")
        sent = 0
        for offset in range(0, len(data), self.chunk_size):
            chunk = data[offset : offset + self.chunk_size]
            self.connection._send(
                {
                    "kind": "stream",
                    "stream_id": self.stream_id,
                    "data": base64.b64encode(chunk).decode(),
                }
            )
            self.stats.chunks += 1
            self.stats.bytes += len(chunk)
            sent += len(chunk)
        return sent

    def close(self) -> None:
        """Signal EOF to the receiver."""
        if self._closed:
            return
        self._closed = True
        self.stats.eof = True
        self.connection._send({"kind": "stream-end", "stream_id": self.stream_id})


class StreamManager:
    """Per-connection registry of incoming and outgoing streams."""

    def __init__(self, connection) -> None:
        self.connection = connection
        self._incoming: dict[str, IncomingStream] = {}
        self._outgoing: dict[str, OutgoingStream] = {}
        self._open_listeners: list[Callable[[IncomingStream], None]] = []

    # -- sender API --------------------------------------------------------

    def open(
        self, *, chunk_size: int = DEFAULT_CHUNK_SIZE, stream_id: str | None = None
    ) -> OutgoingStream:
        if stream_id is None:
            side = "i" if self.connection.is_initiator else "r"
            stream_id = f"s{side}{next(_stream_ids)}"
        stream = OutgoingStream(self.connection, stream_id, chunk_size=chunk_size)
        self._outgoing[stream_id] = stream
        return stream

    def send_bytes(self, data: bytes, **kwargs) -> str:
        """Convenience: one-shot transfer; returns the stream id."""
        stream = self.open(**kwargs)
        stream.write(data)
        stream.close()
        return stream.stream_id

    # -- receiver API ---------------------------------------------------------

    def incoming(self, stream_id: str) -> IncomingStream:
        stream = self._incoming.get(stream_id)
        if stream is None:
            stream = IncomingStream(stream_id)
            self._incoming[stream_id] = stream
        return stream

    def on_open(self, listener: Callable[[IncomingStream], None]) -> None:
        """Notified when the first chunk of a new stream arrives."""
        self._open_listeners.append(listener)

    # -- channel plumbing --------------------------------------------------------

    def handle(self, inner: dict) -> bool:
        """Dispatch a channel frame; returns True when consumed."""
        kind = inner.get("kind")
        if kind == "stream":
            stream_id = inner["stream_id"]
            fresh = stream_id not in self._incoming
            stream = self.incoming(stream_id)
            if fresh:
                for listener in list(self._open_listeners):
                    listener(stream)
            stream._deliver(base64.b64decode(inner["data"]))
            return True
        if kind == "stream-end":
            self.incoming(inner["stream_id"])._finish()
            return True
        return False

    def abort_all(self) -> None:
        """Called when the channel leaves OPEN: poison live transfers."""
        for stream in self._incoming.values():
            if not stream.stats.eof:
                stream._abort()
