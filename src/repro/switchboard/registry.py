"""Switchboard naming: the ``Switchboard.lookup(...)`` of Table 5.

Maps service names to (node, endpoint service) pairs so generated views
can resolve their *switchboard*-typed interfaces symbolically, and plain
``rmi``-typed interfaces can resolve through :class:`RmiNaming` — the
stand-in for ``Naming.lookup`` in the generated Java code.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SwitchboardError


@dataclass(frozen=True, slots=True)
class ServiceAddress:
    """Where a named service lives."""

    node: str
    service: str
    target: str
    """Exported object name to address calls to."""


class NamingRegistry:
    """Shared name → address table (one per simulated universe)."""

    def __init__(self) -> None:
        self._bindings: dict[str, ServiceAddress] = {}

    def bind(self, name: str, address: ServiceAddress) -> None:
        self._bindings[name] = address

    def unbind(self, name: str) -> None:
        self._bindings.pop(name, None)

    def lookup(self, name: str) -> ServiceAddress:
        address = self._bindings.get(name)
        if address is None:
            raise SwitchboardError(f"no binding for {name!r}")
        return address

    def names(self) -> list[str]:
        return sorted(self._bindings)

    def __contains__(self, name: str) -> bool:
        return name in self._bindings
