"""Switchboard: secure, monitored, continuously-authorized channels (§4.3).

Also hosts the plain (RMI-style) RPC layer used by *rmi*-typed view
interfaces, whose frames are readable by eavesdroppers on insecure links —
the contrast that motivates Switchboard.
"""

from .authorizer import (
    AcceptAllAuthorizer,
    AuthorizationMonitor,
    AuthorizationSuite,
    Authorizer,
    RoleAuthorizer,
)
from .channel import (
    ChannelState,
    ChannelStats,
    ChannelSupervisor,
    PendingConnection,
    SwitchboardConnection,
    SwitchboardEndpoint,
    SWITCHBOARD_SERVICE,
)
from .registry import NamingRegistry, ServiceAddress
from .stream import (
    DEFAULT_CHUNK_SIZE,
    IncomingStream,
    OutgoingStream,
    StreamManager,
    StreamStats,
)
from .rpc import (
    ObjectExporter,
    PendingCall,
    PlainRpcEndpoint,
    RemoteError,
    PLAIN_RPC_SERVICE,
)

__all__ = [
    "AcceptAllAuthorizer",
    "AuthorizationMonitor",
    "AuthorizationSuite",
    "Authorizer",
    "ChannelState",
    "ChannelStats",
    "ChannelSupervisor",
    "DEFAULT_CHUNK_SIZE",
    "IncomingStream",
    "OutgoingStream",
    "StreamManager",
    "StreamStats",
    "NamingRegistry",
    "ObjectExporter",
    "PLAIN_RPC_SERVICE",
    "PendingCall",
    "PendingConnection",
    "PlainRpcEndpoint",
    "RemoteError",
    "RoleAuthorizer",
    "SWITCHBOARD_SERVICE",
    "ServiceAddress",
    "SwitchboardConnection",
    "SwitchboardEndpoint",
]
