"""Switchboard secure channels (Section 4.3).

A Switchboard connection is "secure, authenticated, and *continuously*
authorized and monitored" — the property that "distinguishes Switchboard
from abstractions like SSL/TLS".  The implementation:

* **Handshake** — both ends exchange public identities, fresh nonces,
  Diffie-Hellman public values, and dRBAC credential sets, each signed by
  the sender's RSA key.  Each end checks the signature (proof of key
  possession), checks the name→key binding against its PKI directory, and
  runs its :class:`~repro.switchboard.authorizer.Authorizer` on the
  partner's credentials, producing an ``AuthorizationMonitor``.
* **Frames** — after the handshake every frame is encrypted and MACed with
  the DH session key; the per-direction sequence number rides as
  associated data, so replayed or reordered frames fail authentication or
  the monotonicity check (:class:`~repro.errors.ReplayError` accounting).
* **Heartbeats** — replay-resistant pings measure round-trip latency and
  drive liveness: missing too many pongs marks the channel ``DEAD``.
* **Continuous authorization** — a revocation anywhere in either partner's
  proof graph fires the monitor, flips the channel to ``REVOKED``, notifies
  the peer, and blocks further calls until :meth:`SwitchboardConnection.
  revalidate` succeeds with fresh credentials.
"""

from __future__ import annotations

import enum
import itertools
import secrets
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .. import obs
from ..crypto.cipher import AuthenticatedCipher
from ..crypto.dh import DiffieHellman
from ..crypto.keys import PublicIdentity
from ..drbac.delegation import Delegation
from ..obs import names as metric_names
from ..drbac.wire import (
    delegation_from_wire,
    delegation_to_wire,
    public_identity_from_wire,
    public_identity_to_wire,
)
from ..errors import (
    ChannelClosedError,
    CipherError,
    HandshakeError,
    NetworkError,
    RpcAbortedError,
    SwitchboardError,
)
from ..faults.retry import RetryPolicy
from ..net.transport import Transport
from .authorizer import AuthorizationMonitor, AuthorizationSuite
from .rpc import (
    CallIdPool,
    ObjectExporter,
    PendingCall,
    RpcPipeline,
    decode_frame,
    encode_frame,
)

SWITCHBOARD_SERVICE = "switchboard"

_conn_ids = itertools.count(1)

DirectoryLookup = Callable[[str], Optional[PublicIdentity]]


class ChannelState(enum.Enum):
    CONNECTING = "connecting"
    OPEN = "open"
    REVOKED = "revoked"
    DEAD = "dead"
    CLOSED = "closed"


def _handshake_bytes(conn_id: str, role: str, dh_public: int, nonces: list[str]) -> bytes:
    return f"swb-hs|{conn_id}|{role}|{dh_public:x}|{'|'.join(nonces)}".encode()


@dataclass
class ChannelStats:
    frames_sent: int = 0
    frames_received: int = 0
    replays_rejected: int = 0
    tamper_rejected: int = 0
    heartbeats_sent: int = 0
    heartbeats_answered: int = 0
    frames_unroutable: int = 0
    """Frames the network refused at send time (link down, peer crashed).
    The channel treats these like in-flight loss: heartbeats, not the
    sender, decide when the channel is dead."""


class SwitchboardConnection:
    """One secure, monitored end of an established channel."""

    def __init__(
        self,
        endpoint: "SwitchboardEndpoint",
        conn_id: str,
        peer_node: str,
        peer_identity: PublicIdentity,
        cipher: AuthenticatedCipher,
        monitor: AuthorizationMonitor,
        exporter: ObjectExporter,
        *,
        is_initiator: bool,
    ) -> None:
        self.endpoint = endpoint
        self.conn_id = conn_id
        self.peer_node = peer_node
        self.peer_identity = peer_identity
        self.cipher = cipher
        self.monitor = monitor
        self.exporter = exporter
        self.is_initiator = is_initiator
        self.state = ChannelState.OPEN
        self.stats = ChannelStats()
        self.last_rtt: Optional[float] = None
        self.missed_heartbeats = 0
        self._send_seq = 0
        self._recv_seq = -1
        self._pending: dict[int, PendingCall] = {}
        self._ids = CallIdPool()
        self._trust_callbacks: list[Callable[[str], None]] = []
        self._heartbeat_cancel: Callable[[], None] = lambda: None
        self._expiry_cancel: Callable[[], None] = lambda: None
        from .stream import StreamManager  # local import avoids a cycle

        self.streams = StreamManager(self)
        self._last_pong_at: float = endpoint.transport.scheduler.now()
        self._live_counted = True
        obs.counter(metric_names.SWB_CHANNELS_OPENED).inc()
        obs.gauge(metric_names.SWB_CHANNELS_LIVE).inc()
        monitor.on_change(self._on_trust_change)

    # -- calls -------------------------------------------------------------

    def call(self, target: str, method: str, args: list | None = None) -> PendingCall:
        """Invoke ``method`` on the peer's exported ``target`` object.

        After channel establishment no further access-control checks run —
        the paper's single-sign-on property.  Calls on a revoked or closed
        channel raise :class:`ChannelClosedError`.
        """
        self._require_open()
        call_id = self._ids.acquire()
        scheduler = self.endpoint.transport.scheduler
        pending = PendingCall(
            call_id=call_id,
            method=method,
            started_at=scheduler.now(),
            _scheduler=scheduler,
        )
        self._pending[call_id] = pending
        obs.counter(metric_names.SWB_RPC_CALLS).inc()
        inner = {
            "kind": "call",
            "call_id": call_id,
            "target": target,
            "method": method,
            "args": args or [],
        }
        if obs.dist_enabled():
            tracer = obs.get_tracer()
            span = tracer.start(
                "rpc.client", parent=tracer.current,
                node=self.endpoint.node_name, channel=self.conn_id,
                target=target, method=method, call_id=call_id,
            )
            pending.span = span
            inner["tc"] = [span.trace_id, span.span_id]
            with tracer.activate(span):
                self._send(inner)
        else:
            self._send(inner)
        return pending

    def call_sync(self, target: str, method: str, args: list | None = None) -> Any:
        return self.call(target, method, args).wait()

    def pipeline(self, target: str, *, depth: int = 8) -> RpcPipeline:
        """Pipelined calls on the peer's ``target`` object.

        Keeps up to ``depth`` encrypted requests in flight on this
        channel with out-of-order completion; results report in issue
        order (see :class:`~repro.switchboard.rpc.RpcPipeline`).
        """
        return RpcPipeline(
            lambda method, args=None: self.call(target, method, args),
            self.endpoint.transport.scheduler,
            depth=depth,
        )

    # -- heartbeats -----------------------------------------------------------

    def start_heartbeats(self, interval: float, *, max_missed: int = 3) -> None:
        """Begin periodic replay-resistant liveness probes."""
        scheduler = self.endpoint.transport.scheduler
        self._last_pong_at = scheduler.now()

        def beat() -> None:
            if self.state is not ChannelState.OPEN:
                # Self-cancel so a revoked/closed channel stops ticking;
                # revalidation may call start_heartbeats() again.
                self.stop_heartbeats()
                return
            elapsed = scheduler.now() - self._last_pong_at
            if elapsed > interval * max_missed:
                self.missed_heartbeats = max_missed
                self._transition(ChannelState.DEAD, "heartbeat timeout")
                return
            self.stats.heartbeats_sent += 1
            self._send({"kind": "ping", "t": scheduler.now()})

        self._heartbeat_cancel = scheduler.schedule_every(interval, beat)

    def stop_heartbeats(self) -> None:
        self._heartbeat_cancel()
        self._heartbeat_cancel = lambda: None

    # -- expiry watching -----------------------------------------------------

    def watch_expiry(self, interval: float) -> None:
        """Periodically re-check credential expiry for this channel.

        Expiration is a clock condition, not an event, so unlike
        revocations it must be polled; a lapsed credential in the peer's
        proof flips the channel to ``REVOKED`` exactly like a revocation
        (and revalidation with fresh credentials restores it).
        """
        scheduler = self.endpoint.transport.scheduler

        def check() -> None:
            if self.state is not ChannelState.OPEN:
                self._expiry_cancel()
                self._expiry_cancel = lambda: None
                return
            self.monitor.check_expiry(scheduler.now())

        self._expiry_cancel = scheduler.schedule_every(interval, check)

    def stop_expiry_watch(self) -> None:
        self._expiry_cancel()
        self._expiry_cancel = lambda: None

    # -- trust lifecycle ---------------------------------------------------------

    def on_trust_change(self, callback: Callable[[str], None]) -> None:
        """Register for trust-relationship changes (revocations)."""
        self._trust_callbacks.append(callback)

    def revalidate(self, credentials: list[Delegation]) -> PendingCall:
        """Ask the peer to re-run its authorizer with fresh credentials.

        On success both sides return to ``OPEN`` (the peer answers through
        the still-keyed channel; the cipher never changed, only the trust
        state did).
        """
        if self.state not in (ChannelState.REVOKED, ChannelState.OPEN):
            raise ChannelClosedError(f"cannot revalidate from state {self.state}")
        call_id = self._ids.acquire()
        pending = PendingCall(
            call_id=call_id,
            method="<revalidate>",
            _scheduler=self.endpoint.transport.scheduler,
        )
        self._pending[call_id] = pending
        self._send(
            {
                "kind": "revalidate",
                "call_id": call_id,
                "credentials": [delegation_to_wire(c) for c in credentials],
            },
            allow_when_revoked=True,
        )
        return pending

    def close(self) -> None:
        if self.state is ChannelState.CLOSED:
            return
        try:
            self._send({"kind": "close"}, allow_when_revoked=True)
        except SwitchboardError:
            pass
        self._teardown(ChannelState.CLOSED)

    # -- internals ------------------------------------------------------------------

    def _require_open(self) -> None:
        if self.state is ChannelState.REVOKED:
            raise ChannelClosedError(
                f"channel {self.conn_id} revoked; revalidation required"
            )
        if self.state is not ChannelState.OPEN:
            raise ChannelClosedError(f"channel {self.conn_id} is {self.state.value}")

    def _send(self, inner: dict, *, allow_when_revoked: bool = False) -> None:
        if not allow_when_revoked:
            self._require_open()
        elif self.state in (ChannelState.CLOSED, ChannelState.DEAD):
            raise ChannelClosedError(f"channel {self.conn_id} is {self.state.value}")
        seq = self._send_seq
        self._send_seq += 1
        ad = self._associated_data(sender_is_initiator=self.is_initiator, seq=seq)
        frame = self.cipher.encrypt(encode_frame(inner), ad)
        self.stats.frames_sent += 1
        if obs.is_enabled():
            obs.counter(metric_names.SWB_FRAMES_SENT).inc()
            obs.counter(metric_names.SWB_BYTES_SENT).inc(len(frame))
        try:
            self.endpoint.transport.send(
                self.endpoint.node_name,
                self.peer_node,
                SWITCHBOARD_SERVICE,
                encode_frame(
                    {
                        "type": "data",
                        "conn_id": self.conn_id,
                        "seq": seq,
                        "from_initiator": self.is_initiator,
                        "frame": frame.hex(),
                    }
                ),
            )
        except NetworkError:
            # No route right now (fault injection).  Equivalent to the
            # frame being lost in flight: the peer's sequence check
            # tolerates the gap and heartbeat liveness detects a channel
            # that stays unreachable.
            self.stats.frames_unroutable += 1

    def _associated_data(self, *, sender_is_initiator: bool, seq: int) -> bytes:
        direction = b"i2r" if sender_is_initiator else b"r2i"
        return self.conn_id.encode() + b"|" + direction + b"|" + seq.to_bytes(8, "big")

    def _receive(self, outer: dict) -> None:
        seq = int(outer["seq"])
        if seq <= self._recv_seq:
            self.stats.replays_rejected += 1
            obs.counter(metric_names.SWB_REPLAYS_REJECTED).inc()
            return
        ad = self._associated_data(
            sender_is_initiator=bool(outer["from_initiator"]), seq=seq
        )
        ciphertext = bytes.fromhex(outer["frame"])
        try:
            plaintext = self.cipher.decrypt(ciphertext, ad)
        except (CipherError, ValueError):
            self.stats.tamper_rejected += 1
            obs.counter(metric_names.SWB_TAMPER_REJECTED).inc()
            return
        self._recv_seq = seq
        self.stats.frames_received += 1
        if obs.is_enabled():
            obs.counter(metric_names.SWB_FRAMES_RECEIVED).inc()
            obs.counter(metric_names.SWB_BYTES_RECEIVED).inc(len(ciphertext))
        self._handle(decode_frame(plaintext))

    def _handle(self, inner: dict) -> None:
        kind = inner.get("kind")
        if kind in ("stream", "stream-end"):
            self.streams.handle(inner)
        elif kind == "call":
            self._serve_call(inner)
        elif kind == "result":
            self._complete_call(inner)
        elif kind == "ping":
            self._send({"kind": "pong", "t": inner["t"]}, allow_when_revoked=True)
        elif kind == "pong":
            now = self.endpoint.transport.scheduler.now()
            self.last_rtt = now - float(inner["t"])
            self._last_pong_at = now
            self.missed_heartbeats = 0
            self.stats.heartbeats_answered += 1
        elif kind == "revoked":
            self._transition(ChannelState.REVOKED, inner.get("credential_id", "peer"))
        elif kind == "revalidate":
            self._serve_revalidate(inner)
        elif kind == "revalidated":
            self._complete_revalidate(inner)
        elif kind == "close":
            self._teardown(ChannelState.CLOSED)
        else:
            raise SwitchboardError(f"unknown channel frame kind {kind!r}")

    def _serve_call(self, inner: dict) -> None:
        tc = inner.get("tc")
        span = None
        if tc is not None and obs.is_enabled():
            span = obs.get_tracer().start(
                "rpc.server", remote=(tc[0], tc[1]),
                node=self.endpoint.node_name, channel=self.conn_id,
                target=inner.get("target", ""), method=inner.get("method", ""),
                call_id=inner["call_id"],
            )
        if self.state is not ChannelState.OPEN:
            # Paper: monitors "can ... requir[e] a component to revalidate
            # itself prior to approving future requests".
            if span is not None:
                span.set_error("ChannelRevoked")
                span.finish()
            self._send(
                {
                    "kind": "result",
                    "call_id": inner["call_id"],
                    "error": "ChannelRevoked: revalidation required",
                },
                allow_when_revoked=True,
            )
            return
        response: dict[str, Any] = {"kind": "result", "call_id": inner["call_id"]}
        try:
            if span is not None:
                with obs.get_tracer().activate(span):
                    response["value"] = self.exporter.dispatch(
                        inner["target"], inner["method"], inner.get("args", [])
                    )
            else:
                response["value"] = self.exporter.dispatch(
                    inner["target"], inner["method"], inner.get("args", [])
                )
        except Exception as exc:  # noqa: BLE001 - errors cross the wire as text
            if span is not None:
                span.set_error(type(exc).__name__)
            response["error"] = f"{type(exc).__name__}: {exc}"
        if span is not None:
            with obs.get_tracer().activate(span):
                self._send(response, allow_when_revoked=True)
            span.finish()
        else:
            self._send(response, allow_when_revoked=True)

    def _complete_call(self, inner: dict) -> None:
        pending = self._pending.pop(inner["call_id"], None)
        if pending is None:
            return
        self._ids.release(inner["call_id"])
        if pending.started_at is not None:
            obs.histogram(metric_names.SWB_RPC_LATENCY).observe(
                self.endpoint.transport.scheduler.now() - pending.started_at
            )
        if "error" in inner:
            obs.counter(metric_names.SWB_RPC_FAILURES).inc()
            pending.fail(inner["error"])
        else:
            pending.resolve(inner.get("value"))

    def _serve_revalidate(self, inner: dict) -> None:
        credentials = [delegation_from_wire(c) for c in inner.get("credentials", [])]
        suite = self.endpoint.suite_for(self.conn_id)
        response: dict[str, Any] = {"kind": "revalidated", "call_id": inner["call_id"]}
        try:
            new_monitor = suite.authorizer.authorize(self.peer_identity, credentials)
        except HandshakeError as exc:
            response["error"] = str(exc)
            self._send(response, allow_when_revoked=True)
            return
        self.monitor.close()
        self.monitor = new_monitor
        new_monitor.on_change(self._on_trust_change)
        self.state = ChannelState.OPEN
        response["ok"] = True
        self._send(response, allow_when_revoked=True)

    def _complete_revalidate(self, inner: dict) -> None:
        pending = self._pending.pop(inner["call_id"], None)
        if "error" not in inner:
            self.state = ChannelState.OPEN
        if pending is None:
            return
        self._ids.release(inner["call_id"])
        if "error" in inner:
            pending.fail(inner["error"])
        else:
            pending.resolve(True)

    def _on_trust_change(self, credential_id: str) -> None:
        if self.state in (ChannelState.CLOSED, ChannelState.DEAD):
            return
        try:
            self._send(
                {"kind": "revoked", "credential_id": credential_id},
                allow_when_revoked=True,
            )
        except SwitchboardError:
            pass
        self._transition(ChannelState.REVOKED, credential_id)

    def _transition(self, state: ChannelState, reason: str) -> None:
        if self.state is state:
            return
        self.state = state
        if state is ChannelState.REVOKED:
            obs.counter(metric_names.SWB_CHANNELS_REVOKED).inc()
        elif state is ChannelState.DEAD:
            obs.counter(metric_names.SWB_CHANNELS_DEAD).inc()
        if state in (ChannelState.DEAD, ChannelState.CLOSED):
            self.stop_heartbeats()
            self._mark_down()
            self._abort_pending(state.value)
        if state is not ChannelState.OPEN:
            self.streams.abort_all()
        for callback in list(self._trust_callbacks):
            callback(reason)

    def _teardown(self, state: ChannelState) -> None:
        self.stop_heartbeats()
        self.stop_expiry_watch()
        self.monitor.close()
        self.state = state
        obs.counter(metric_names.SWB_CHANNELS_CLOSED).inc()
        self._mark_down()
        self._abort_pending(state.value)
        self.endpoint._forget(self.conn_id)

    def _mark_down(self) -> None:
        """Decrement the live-channel gauge exactly once per connection."""
        if self._live_counted:
            self._live_counted = False
            obs.gauge(metric_names.SWB_CHANNELS_LIVE).dec()

    def _abort_pending(self, reason: str) -> None:
        """Fail every in-flight call with a typed error.

        A channel torn down mid-RPC must not leave callers blocked on a
        future that can never complete; each pending call raises
        :class:`~repro.errors.RpcAbortedError` and counts as an RPC
        failure.
        """
        pending_calls, self._pending = list(self._pending.values()), {}
        for pending in pending_calls:
            obs.counter(metric_names.SWB_RPC_FAILURES).inc()
            pending.abort(
                RpcAbortedError(
                    f"channel {self.conn_id} {reason} before call "
                    f"{pending.method!r} completed"
                )
            )


class SwitchboardEndpoint:
    """Per-node Switchboard service: accepts and initiates connections."""

    def __init__(
        self,
        transport: Transport,
        node_name: str,
        *,
        directory: DirectoryLookup | None = None,
    ) -> None:
        self.transport = transport
        self.node_name = node_name
        self.directory = directory
        self.exporter = ObjectExporter()
        self._listeners: dict[str, AuthorizationSuite] = {}
        self._connections: dict[str, SwitchboardConnection] = {}
        self._conn_suites: dict[str, AuthorizationSuite] = {}
        self._dials: dict[str, _Dial] = {}
        transport.network.node(node_name).bind(SWITCHBOARD_SERVICE, self._on_frame)

    # -- server side -----------------------------------------------------------

    def listen(self, service_name: str, suite: AuthorizationSuite) -> None:
        """Accept connections addressed to ``service_name`` with ``suite``."""
        self._listeners[service_name] = suite

    def export(self, name: str, obj: Any) -> None:
        self.exporter.export(name, obj)

    # -- client side ------------------------------------------------------------

    def connect(
        self, remote_node: str, remote_service: str, suite: AuthorizationSuite
    ) -> "PendingConnection":
        """Initiate a handshake; returns a future SwitchboardConnection."""
        conn_id = f"conn-{next(_conn_ids)}-{secrets.token_hex(4)}"
        obs.counter(metric_names.SWB_HANDSHAKES_INITIATED).inc()
        dh = DiffieHellman()
        nonce = secrets.token_hex(16)
        dial = _Dial(conn_id=conn_id, suite=suite, dh=dh, nonce=nonce)
        self._dials[conn_id] = dial
        self._conn_suites[conn_id] = suite
        signature = suite.identity.sign(
            _handshake_bytes(conn_id, "initiator", dh.public_value, [nonce])
        )
        self.transport.send(
            self.node_name,
            remote_node,
            SWITCHBOARD_SERVICE,
            encode_frame(
                {
                    "type": "hello",
                    "conn_id": conn_id,
                    "service": remote_service,
                    "reply_to": self.node_name,
                    "identity": public_identity_to_wire(suite.identity.public),
                    "dh": f"{dh.public_value:x}",
                    "nonce": nonce,
                    "credentials": [delegation_to_wire(c) for c in suite.credentials],
                    "sig": signature.hex(),
                }
            ),
        )
        return PendingConnection(dial, self.transport.scheduler)

    # -- shared ---------------------------------------------------------------------

    def connections(self) -> list[SwitchboardConnection]:
        return list(self._connections.values())

    def suite_for(self, conn_id: str) -> AuthorizationSuite:
        suite = self._conn_suites.get(conn_id)
        if suite is None:
            raise SwitchboardError(f"no suite recorded for connection {conn_id}")
        return suite

    def _forget(self, conn_id: str) -> None:
        self._connections.pop(conn_id, None)
        self._conn_suites.pop(conn_id, None)

    def _check_binding(self, claimed: PublicIdentity) -> None:
        """Reject identities whose key contradicts the PKI directory."""
        if self.directory is None:
            return
        expected = self.directory(claimed.name)
        if expected is not None and expected.public_key != claimed.public_key:
            raise HandshakeError(
                f"identity binding mismatch for {claimed.name!r}"
            )

    # -- frame handling -----------------------------------------------------------

    def _on_frame(self, payload: bytes, sender: str) -> None:
        outer = decode_frame(payload)
        kind = outer.get("type")
        if kind == "hello":
            self._on_hello(outer, sender)
        elif kind == "welcome":
            self._on_welcome(outer, sender)
        elif kind == "reject":
            self._on_reject(outer)
        elif kind == "data":
            conn = self._connections.get(outer.get("conn_id", ""))
            if conn is not None:
                conn._receive(outer)
        else:
            raise SwitchboardError(f"unknown switchboard frame {kind!r}")

    def _on_hello(self, outer: dict, sender: str) -> None:
        conn_id = outer["conn_id"]

        def reject(reason: str) -> None:
            obs.counter(metric_names.SWB_HANDSHAKES_REJECTED).inc()
            try:
                self.transport.send(
                    self.node_name,
                    outer["reply_to"],
                    SWITCHBOARD_SERVICE,
                    encode_frame(
                        {"type": "reject", "conn_id": conn_id, "reason": reason}
                    ),
                )
            except NetworkError:
                pass  # initiator unreachable; its dial simply never resolves

        suite = self._listeners.get(outer.get("service", ""))
        if suite is None:
            reject(f"no such service {outer.get('service')!r}")
            return
        try:
            peer_identity = public_identity_from_wire(outer["identity"])
            self._check_binding(peer_identity)
            peer_dh = int(outer["dh"], 16)
            expected = _handshake_bytes(conn_id, "initiator", peer_dh, [outer["nonce"]])
            if not peer_identity.verify(expected, bytes.fromhex(outer["sig"])):
                raise HandshakeError("initiator signature invalid")
            credentials = [delegation_from_wire(c) for c in outer["credentials"]]
            monitor = suite.authorizer.authorize(peer_identity, credentials)
        except (SwitchboardError, ValueError, KeyError) as exc:
            reject(str(exc))
            return

        dh = DiffieHellman()
        session_key = dh.compute_shared(peer_dh)
        nonce = secrets.token_hex(16)
        connection = SwitchboardConnection(
            endpoint=self,
            conn_id=conn_id,
            peer_node=outer["reply_to"],
            peer_identity=peer_identity,
            cipher=AuthenticatedCipher(session_key),
            monitor=monitor,
            exporter=self.exporter,
            is_initiator=False,
        )
        self._connections[conn_id] = connection
        self._conn_suites[conn_id] = suite
        obs.counter(metric_names.SWB_HANDSHAKES_ACCEPTED).inc()
        signature = suite.identity.sign(
            _handshake_bytes(
                conn_id, "responder", dh.public_value, [outer["nonce"], nonce]
            )
        )
        try:
            self.transport.send(
                self.node_name,
                outer["reply_to"],
                SWITCHBOARD_SERVICE,
                encode_frame(
                    {
                        "type": "welcome",
                        "conn_id": conn_id,
                        "reply_to": self.node_name,
                        "identity": public_identity_to_wire(suite.identity.public),
                        "dh": f"{dh.public_value:x}",
                        "client_nonce": outer["nonce"],
                        "nonce": nonce,
                        "credentials": [
                            delegation_to_wire(c) for c in suite.credentials
                        ],
                        "sig": signature.hex(),
                    }
                ),
            )
        except NetworkError:
            # The initiator became unreachable mid-handshake; discard the
            # half-open end rather than keep a channel it never learns of.
            connection._teardown(ChannelState.DEAD)

    def _on_welcome(self, outer: dict, sender: str) -> None:
        dial = self._dials.pop(outer.get("conn_id", ""), None)
        if dial is None:
            return
        try:
            peer_identity = public_identity_from_wire(outer["identity"])
            self._check_binding(peer_identity)
            peer_dh = int(outer["dh"], 16)
            if outer.get("client_nonce") != dial.nonce:
                raise HandshakeError("responder echoed wrong nonce")
            expected = _handshake_bytes(
                outer["conn_id"], "responder", peer_dh, [dial.nonce, outer["nonce"]]
            )
            if not peer_identity.verify(expected, bytes.fromhex(outer["sig"])):
                raise HandshakeError("responder signature invalid")
            credentials = [delegation_from_wire(c) for c in outer["credentials"]]
            monitor = dial.suite.authorizer.authorize(peer_identity, credentials)
            session_key = dial.dh.compute_shared(peer_dh)
        except (SwitchboardError, ValueError, KeyError) as exc:
            dial.fail(str(exc))
            self._conn_suites.pop(outer.get("conn_id", ""), None)
            return
        connection = SwitchboardConnection(
            endpoint=self,
            conn_id=outer["conn_id"],
            peer_node=outer["reply_to"],
            peer_identity=peer_identity,
            cipher=AuthenticatedCipher(session_key),
            monitor=monitor,
            exporter=self.exporter,
            is_initiator=True,
        )
        self._connections[outer["conn_id"]] = connection
        dial.resolve(connection)

    def _on_reject(self, outer: dict) -> None:
        dial = self._dials.pop(outer.get("conn_id", ""), None)
        if dial is not None:
            dial.fail(outer.get("reason", "rejected"))
            self._conn_suites.pop(outer.get("conn_id", ""), None)


@dataclass
class _Dial:
    """Client-side handshake state awaiting WELCOME/REJECT."""

    conn_id: str
    suite: AuthorizationSuite
    dh: DiffieHellman
    nonce: str
    done: bool = False
    connection: Optional[SwitchboardConnection] = None
    error: Optional[str] = None

    def resolve(self, connection: SwitchboardConnection) -> None:
        self.done = True
        self.connection = connection

    def fail(self, reason: str) -> None:
        self.done = True
        self.error = reason


class PendingConnection:
    """Future for an in-flight handshake."""

    def __init__(self, dial: _Dial, scheduler) -> None:
        self._dial = dial
        self._scheduler = scheduler

    @property
    def done(self) -> bool:
        return self._dial.done

    @property
    def connection(self) -> SwitchboardConnection:
        if not self._dial.done:
            raise SwitchboardError("handshake not complete")
        if self._dial.error is not None:
            raise HandshakeError(self._dial.error)
        assert self._dial.connection is not None
        return self._dial.connection

    def wait(self, *, max_events: int = 100_000) -> SwitchboardConnection:
        steps = 0
        while not self._dial.done:
            if not self._scheduler.step():
                raise HandshakeError("event queue drained before handshake completed")
            steps += 1
            if steps > max_events:
                raise HandshakeError("handshake did not complete")
        return self.connection


class ChannelSupervisor:
    """Keeps one logical channel alive across faults.

    Wraps an endpoint→service connection with heartbeat liveness and
    automatic re-establishment: when heartbeats declare the channel
    ``DEAD`` (link down, domain partition, peer crash), the supervisor
    redials on a :class:`~repro.faults.retry.RetryPolicy` schedule until
    a fresh handshake succeeds, then resumes heartbeats on the new
    connection.  Every step runs on the virtual clock, so supervised
    recovery is deterministic under a seeded fault plan.

    The supervisor deliberately does **not** replay in-flight calls: the
    dead channel aborted them with
    :class:`~repro.errors.RpcAbortedError`, and whether re-invocation is
    safe is an application property (see
    :meth:`PlainRpcEndpoint.call_with_retry` for the at-least-once
    variant).
    """

    def __init__(
        self,
        endpoint: SwitchboardEndpoint,
        remote_node: str,
        remote_service: str,
        suite: AuthorizationSuite,
        *,
        heartbeat_interval: float = 0.5,
        max_missed: int = 3,
        policy: RetryPolicy | None = None,
        on_established: Callable[[SwitchboardConnection, bool], None] | None = None,
    ) -> None:
        self.endpoint = endpoint
        self.remote_node = remote_node
        self.remote_service = remote_service
        self.suite = suite
        self.heartbeat_interval = heartbeat_interval
        self.max_missed = max_missed
        self.policy = policy or RetryPolicy.exponential(
            base_delay=heartbeat_interval,
            max_attempts=8,
            max_delay=4 * heartbeat_interval,
        )
        self.on_established = on_established
        """Called as ``on_established(connection, is_reconnect)`` after
        every successful (re-)establishment — the hook for re-exporting
        session state onto the fresh channel."""
        self.connection: SwitchboardConnection | None = None
        self.reconnects = 0
        self.gave_up = False
        self._stopped = False
        self._died_at: float | None = None

    @property
    def _scheduler(self):
        return self.endpoint.transport.scheduler

    @property
    def healthy(self) -> bool:
        return (
            self.connection is not None
            and self.connection.state is ChannelState.OPEN
        )

    def start(self) -> "ChannelSupervisor":
        """Dial the initial connection and begin supervising it."""
        self._dial(is_reconnect=False)
        return self

    def stop(self) -> None:
        """End supervision and close the live connection, if any."""
        self._stopped = True
        if self.connection is not None and self.connection.state in (
            ChannelState.OPEN,
            ChannelState.REVOKED,
        ):
            self.connection.close()
        self.connection = None

    # -- internals ---------------------------------------------------------

    def _dial(self, *, is_reconnect: bool) -> None:
        schedule = self.policy.schedule()

        def attempt() -> None:
            if self._stopped:
                return
            try:
                pending = self.endpoint.connect(
                    self.remote_node, self.remote_service, self.suite
                )
            except NetworkError:
                pending = None  # no route yet; retry on the schedule
            self._scheduler.schedule(
                self.heartbeat_interval, lambda: settle(pending)
            )

        def settle(pending: PendingConnection | None) -> None:
            if self._stopped:
                return
            if pending is not None and pending.done:
                try:
                    self._adopt(pending.connection, is_reconnect=is_reconnect)
                    return
                except SwitchboardError:
                    pass  # handshake rejected; fall through to retry
            wait = schedule.next_delay()
            if wait is None:
                self.gave_up = True
                return
            self._scheduler.schedule(wait, attempt)

        attempt()

    def _adopt(
        self, connection: SwitchboardConnection, *, is_reconnect: bool
    ) -> None:
        self.connection = connection
        connection.on_trust_change(self._on_channel_event)
        connection.start_heartbeats(
            self.heartbeat_interval, max_missed=self.max_missed
        )
        if is_reconnect:
            self.reconnects += 1
            obs.counter(metric_names.SWB_CHANNELS_REESTABLISHED).inc()
            if self._died_at is not None:
                obs.histogram(metric_names.SWB_RECONNECT_LATENCY).observe(
                    self._scheduler.now() - self._died_at
                )
                self._died_at = None
        if self.on_established is not None:
            self.on_established(connection, is_reconnect)

    def _on_channel_event(self, reason: str) -> None:
        connection = self.connection
        if self._stopped or connection is None:
            return
        if connection.state is ChannelState.DEAD:
            self.connection = None
            self._died_at = self._scheduler.now()
            self._dial(is_reconnect=True)
