"""Token-bucket rate limiting over a virtual clock.

A :class:`TokenBucket` admits up to ``burst`` requests instantly and
refills at ``rate`` tokens per virtual second.  Refill is computed
lazily from elapsed clock time, so two buckets driven through the same
virtual-clock schedule hold bit-identical token counts — the property
that keeps the overload harness byte-identical across runs and that
``tests/flow/test_bucket.py`` checks with hypothesis.
"""

from __future__ import annotations

from ..clock import Clock
from ..errors import FaultError


class TokenBucket:
    """Deterministic leaky-bucket admission over virtual time."""

    __slots__ = ("rate", "burst", "_tokens", "_last")

    def __init__(self, rate: float, burst: float, clock: Clock) -> None:
        if rate <= 0:
            raise FaultError(f"bucket rate must be positive, got {rate}")
        if burst <= 0:
            raise FaultError(f"bucket burst must be positive, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = clock.now()

    def _refill(self, now: float) -> None:
        if now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now

    def available(self, now: float) -> float:
        """Tokens currently in the bucket (never negative)."""
        self._refill(now)
        return self._tokens

    def try_acquire(self, now: float, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if the bucket holds them; never goes negative."""
        self._refill(now)
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def time_until(self, now: float, tokens: float = 1.0) -> float:
        """Virtual seconds until ``tokens`` will be available (0 if now).

        This is the honest ``retry_after`` hint a shed response carries:
        retrying any earlier is guaranteed to be shed again (absent
        competing consumers, which can only push the time further out).
        """
        self._refill(now)
        if self._tokens >= tokens:
            return 0.0
        return (tokens - self._tokens) / self.rate
