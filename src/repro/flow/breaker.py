"""Per-endpoint circuit breaking with half-open probing.

A :class:`CircuitBreaker` watches transport-level outcomes of calls to
one remote endpoint.  ``failure_threshold`` failures within a sliding
``window_s`` of virtual time trip it OPEN: further calls are refused
locally (typed :class:`~repro.errors.RpcShedError`, no frame sent), so a
dead or drowning peer stops costing a full timeout per call.  After
``open_s`` the breaker goes HALF_OPEN and lets ``half_open_probes``
probe calls through; all-successful probes close it, any probe failure
re-opens it for another ``open_s``.

Only transport-shaped failures count — sheds, timeouts, aborted calls,
dead links.  Application errors that crossed the wire (a remote
``AuthorizationError``, say) prove the endpoint is alive and count as
successes.
"""

from __future__ import annotations

from collections import deque

from .. import obs
from ..clock import Clock
from ..errors import FaultError
from ..obs import names as metric_names

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-rate gate for calls to one remote endpoint."""

    def __init__(
        self,
        clock: Clock,
        *,
        failure_threshold: int = 5,
        window_s: float = 1.0,
        open_s: float = 1.0,
        half_open_probes: int = 1,
        name: str = "",
    ) -> None:
        if failure_threshold < 1:
            raise FaultError("failure_threshold must be >= 1")
        if window_s <= 0 or open_s <= 0:
            raise FaultError("window_s and open_s must be positive")
        if half_open_probes < 1:
            raise FaultError("half_open_probes must be >= 1")
        self._clock = clock
        self.failure_threshold = failure_threshold
        self.window_s = window_s
        self.open_s = open_s
        self.half_open_probes = half_open_probes
        self.name = name
        self.state = CLOSED
        self._failures: deque[float] = deque()
        self._opened_at = 0.0
        self._probes_left = 0
        self._probe_successes = 0

    def _transition(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        obs.event("flow.breaker", name=self.name, state=state)
        if state == OPEN:
            obs.counter(metric_names.FLOW_BREAKER_OPENS).inc()

    def allow(self) -> bool:
        """May a call be attempted right now?  (Mutates probe budget.)"""
        now = self._clock.now()
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self._opened_at < self.open_s:
                return False
            self._transition(HALF_OPEN)
            self._probes_left = self.half_open_probes
            self._probe_successes = 0
        # HALF_OPEN: admit probes while the budget lasts.
        if self._probes_left > 0:
            self._probes_left -= 1
            obs.counter(metric_names.FLOW_BREAKER_PROBES).inc()
            return True
        return False

    def retry_after(self) -> float:
        """Virtual seconds until the breaker will admit a call again."""
        if self.state != OPEN:
            return 0.0
        return max(0.0, self.open_s - (self._clock.now() - self._opened_at))

    def on_success(self) -> None:
        if self.state == HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_probes:
                self._failures.clear()
                self._transition(CLOSED)
        elif self.state == CLOSED and self._failures:
            self._prune(self._clock.now())

    def on_failure(self) -> None:
        now = self._clock.now()
        if self.state == HALF_OPEN:
            # The probe failed: the endpoint is still sick.
            self._opened_at = now
            self._transition(OPEN)
            return
        if self.state == OPEN:
            return
        self._failures.append(now)
        self._prune(now)
        if len(self._failures) >= self.failure_threshold:
            self._opened_at = now
            self._transition(OPEN)

    def _prune(self, now: float) -> None:
        horizon = now - self.window_s
        while self._failures and self._failures[0] <= horizon:
            self._failures.popleft()
