"""AIMD adaptive concurrency limiting driven by observed latency.

The limiter owns one integer: how many requests may be in flight at
once.  Every completed request reports its virtual-time latency through
:meth:`AimdLimiter.observe`; latencies above ``target_latency_s`` (or
outright failures — sheds, timeouts, dead links) trigger a
multiplicative decrease, while healthy completions accumulate additive
credit of ``1 / limit`` each, raising the window by one per full
window's worth of successes — TCP's AIMD shape, over virtual time.

Backoffs are rate-limited by ``cooldown_s`` of virtual time so one burst
of queued failures (all symptoms of the same congestion instant)
collapses the window once, not once per failure.

Used in two places: :class:`~repro.switchboard.rpc.RpcPipeline` accepts
a limiter and clamps its issue window to ``limiter.limit`` (client-side
backpressure), and :class:`~repro.flow.controller.FlowController` can
use one to modulate server worker concurrency when
``FlowConfig.adaptive`` is set.
"""

from __future__ import annotations

from .. import obs
from ..clock import Clock
from ..errors import FaultError
from ..obs import names as metric_names


class AimdLimiter:
    """Additive-increase / multiplicative-decrease concurrency window."""

    def __init__(
        self,
        clock: Clock,
        *,
        initial: int = 8,
        min_limit: int = 1,
        max_limit: int = 64,
        target_latency_s: float = 0.1,
        backoff: float = 0.5,
        cooldown_s: float = 0.05,
    ) -> None:
        if not 1 <= min_limit <= initial <= max_limit:
            raise FaultError(
                f"need 1 <= min_limit <= initial <= max_limit, got "
                f"{min_limit}/{initial}/{max_limit}"
            )
        if not 0.0 < backoff < 1.0:
            raise FaultError(f"backoff must be in (0, 1), got {backoff}")
        if target_latency_s <= 0:
            raise FaultError("target_latency_s must be positive")
        self._clock = clock
        self._limit = initial
        self.min_limit = min_limit
        self.max_limit = max_limit
        self.target_latency_s = target_latency_s
        self.backoff = backoff
        self.cooldown_s = cooldown_s
        self._credit = 0.0
        self._last_backoff = float("-inf")
        self.backoffs = 0
        self.raises = 0

    @property
    def limit(self) -> int:
        """Current concurrency allowance (always >= min_limit)."""
        return self._limit

    def observe(self, latency_s: float, *, ok: bool = True) -> None:
        """Record one completed attempt and adapt the window."""
        if not ok or latency_s > self.target_latency_s:
            now = self._clock.now()
            if now - self._last_backoff >= self.cooldown_s:
                self._last_backoff = now
                shrunk = max(self.min_limit, int(self._limit * self.backoff))
                if shrunk < self._limit:
                    self._limit = shrunk
                    self.backoffs += 1
                    obs.counter(metric_names.FLOW_LIMITER_BACKOFFS).inc()
            self._credit = 0.0
        else:
            self._credit += 1.0 / self._limit
            if self._credit >= 1.0 and self._limit < self.max_limit:
                self._limit += 1
                self._credit = 0.0
                self.raises += 1
                obs.counter(metric_names.FLOW_LIMITER_RAISES).inc()
        obs.gauge(metric_names.FLOW_LIMITER_LIMIT).set(self._limit)
