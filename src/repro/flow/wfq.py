"""Weighted fair queueing across priority classes.

Classic virtual-finish-time WFQ: each class ``c`` with weight ``w_c``
accumulates a per-class finish tag ``F = max(V, F_prev) + size / w_c``
(``V`` is the queue's virtual work clock, advanced to the tag of every
dequeued item), and :meth:`pop` always returns the item with the
smallest tag.  Backlogged classes therefore share service in proportion
to their weights, while an idle class never banks credit it could later
use to starve the others.

The queue is work-conserving (``pop`` succeeds whenever any item is
queued) and deterministic: ties break on (finish tag, arrival sequence),
never on hash order.  ``tests/flow/test_wfq.py`` checks both properties
with hypothesis.
"""

from __future__ import annotations

import heapq
from typing import Any

from ..errors import FaultError


class WeightedFairQueue:
    """Priority-class fair queue with weighted service shares."""

    def __init__(self, weights: tuple[float, ...] | list[float]) -> None:
        if not weights:
            raise FaultError("WFQ needs at least one class weight")
        if any(w <= 0 for w in weights):
            raise FaultError(f"WFQ weights must be positive, got {weights}")
        self.weights = tuple(float(w) for w in weights)
        self._heap: list[tuple[float, int, int, Any]] = []
        self._finish = [0.0] * len(self.weights)
        self._virtual = 0.0
        self._seq = 0
        self._depth = [0] * len(self.weights)

    def __len__(self) -> int:
        return len(self._heap)

    def depth(self, cls: int | None = None) -> int:
        """Queued items, total or for one class."""
        if cls is None:
            return len(self._heap)
        return self._depth[cls]

    def push(self, cls: int, item: Any, size: float = 1.0) -> None:
        """Queue ``item`` under priority class ``cls``.

        ``size`` is the item's service demand in abstract units; classes
        are compared by accumulated ``size / weight``, so a class sending
        double-size items at equal weight gets half the item rate.
        """
        if not 0 <= cls < len(self.weights):
            raise FaultError(
                f"priority class {cls} out of range 0..{len(self.weights) - 1}"
            )
        if size <= 0:
            raise FaultError(f"item size must be positive, got {size}")
        start = max(self._virtual, self._finish[cls])
        finish = start + size / self.weights[cls]
        self._finish[cls] = finish
        heapq.heappush(self._heap, (finish, cls, self._seq, item))
        self._seq += 1
        self._depth[cls] += 1

    def pop(self) -> tuple[int, Any]:
        """Dequeue the item with the smallest virtual finish tag."""
        if not self._heap:
            raise FaultError("pop from an empty WeightedFairQueue")
        finish, cls, _seq, item = heapq.heappop(self._heap)
        # Advance the work clock so newly arriving traffic cannot claim
        # virtual time that has already been served.
        self._virtual = max(self._virtual, finish)
        self._depth[cls] -= 1
        return cls, item

    def drain(self) -> list[tuple[int, Any]]:
        """Dequeue everything in service order (teardown helper)."""
        out = []
        while self._heap:
            out.append(self.pop())
        return out
