"""Server-side admission control: bucket → fair queue → service slots.

The :class:`FlowController` sits in front of RPC dispatch
(:meth:`repro.switchboard.rpc.PlainRpcEndpoint._serve` hands it every
arriving call frame when the endpoint was built with a
:class:`~repro.flow.config.FlowConfig`).  Each submission is:

1. **classified** into a priority class (revocation/monitor traffic
   outranks authorization checks outranks view reads outranks bulk puts);
2. **rate-checked** against the caller's per-principal
   :class:`~repro.flow.bucket.TokenBucket` and the global backlog cap —
   refusals return a :class:`Shed` carrying an honest retry-after hint,
   and classes at or below ``exempt_class`` are never refused;
3. **queued** in a :class:`~repro.flow.wfq.WeightedFairQueue` so a flood
   of bulk writes cannot starve higher classes (nor vice versa — WFQ
   gives the lowest class its weighted share, not zero);
4. **served** by up to ``workers`` concurrent slots, each charging
   ``service_time_s`` of virtual time per request — the service model
   that makes overload *exist* in a discrete-event world where dispatch
   itself is instantaneous.

Every stage is instrumented: ``flow.*`` metrics, a ``flow.shed``
structured event per refusal, and a ``flow.queue.wait`` span covering
each request's time in queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .. import obs
from ..net.events import EventScheduler
from ..obs import names as metric_names
from .bucket import TokenBucket
from .config import FlowConfig
from .limiter import AimdLimiter
from .wfq import WeightedFairQueue


@dataclass(frozen=True, slots=True)
class Shed:
    """An admission refusal: why, for whom, and when to retry."""

    retry_after: float
    reason: str  # "rate" | "backlog"
    cls: int


@dataclass(slots=True)
class _Item:
    execute: Callable[[], None]
    cls: int
    arrived: float
    span: Any = field(default=None, repr=False)


class FlowController:
    """One endpoint's admission pipeline over a shared event scheduler."""

    def __init__(
        self, config: FlowConfig, scheduler: EventScheduler, *, name: str = ""
    ) -> None:
        self.config = config
        self.scheduler = scheduler
        self.name = name
        self.queue = WeightedFairQueue(config.weights)
        self.limiter: AimdLimiter | None = None
        if config.adaptive:
            self.limiter = AimdLimiter(
                scheduler,
                initial=config.workers,
                min_limit=config.min_workers,
                max_limit=config.max_workers,
                target_latency_s=config.target_latency_s,
            )
        self.busy = 0
        self.admitted_by_class = [0] * len(config.weights)
        self.shed_by_class = [0] * len(config.weights)
        self.completed_by_class = [0] * len(config.weights)
        self._buckets: dict[str, TokenBucket] = {}

    @property
    def worker_limit(self) -> int:
        return self.limiter.limit if self.limiter is not None else self.config.workers

    @property
    def admitted(self) -> int:
        return sum(self.admitted_by_class)

    @property
    def sheds(self) -> int:
        return sum(self.shed_by_class)

    def bucket_for(self, principal: str) -> TokenBucket:
        bucket = self._buckets.get(principal)
        if bucket is None:
            bucket = TokenBucket(
                self.config.bucket_rate, self.config.bucket_burst, self.scheduler
            )
            self._buckets[principal] = bucket
        return bucket

    # -- admission -----------------------------------------------------------

    def submit(
        self,
        principal: str,
        target: str,
        method: str,
        execute: Callable[[], None],
    ) -> Shed | None:
        """Admit (returns ``None``) or refuse (returns a :class:`Shed`).

        An admitted request's ``execute`` runs later — after its queue
        wait and ``service_time_s`` — via the scheduler, so callers must
        not rely on synchronous dispatch when flow control is attached.
        """
        config = self.config
        now = self.scheduler.now()
        cls = config.classify(target, method)
        if config.enabled and cls > config.exempt_class:
            if config.bucket_enabled:
                bucket = self.bucket_for(principal)
                if not bucket.try_acquire(now):
                    obs.counter(metric_names.FLOW_BUCKET_DENIED).inc()
                    return self._shed(
                        cls, "rate", bucket.time_until(now), target, method, principal
                    )
            if len(self.queue) >= config.max_backlog:
                return self._shed(
                    cls, "backlog", config.retry_after_s, target, method, principal
                )
        span = None
        if obs.is_enabled():
            tracer = obs.get_tracer()
            span = tracer.start(
                "flow.queue.wait", parent=tracer.current,
                node=self.name, target=target, method=method, cls=cls,
            )
        self.admitted_by_class[cls] += 1
        obs.counter(metric_names.FLOW_ADMITTED).inc()
        obs.histogram(metric_names.FLOW_QUEUE_DEPTH).observe(len(self.queue))
        self.queue.push(cls, _Item(execute=execute, cls=cls, arrived=now, span=span))
        self._drain()
        return None

    def _shed(
        self,
        cls: int,
        reason: str,
        retry_after: float,
        target: str,
        method: str,
        principal: str,
    ) -> Shed:
        retry_after = max(retry_after, 0.0)
        self.shed_by_class[cls] += 1
        obs.counter(metric_names.FLOW_SHED).inc()
        obs.event(
            "flow.shed", node=self.name, principal=principal, target=target,
            method=method, cls=cls, reason=reason,
            retry_after=round(retry_after, 6),
        )
        return Shed(retry_after=retry_after, reason=reason, cls=cls)

    # -- service -------------------------------------------------------------

    def _drain(self) -> None:
        while len(self.queue) and self.busy < self.worker_limit:
            cls, item = self.queue.pop()
            now = self.scheduler.now()
            obs.histogram(metric_names.FLOW_QUEUE_WAIT).observe(now - item.arrived)
            if item.span is not None:
                item.span.finish()
                item.span = None
            self.busy += 1
            obs.gauge(metric_names.FLOW_SERVICE_BUSY).set(self.busy)
            if self.config.service_time_s > 0:
                self.scheduler.schedule(
                    self.config.service_time_s,
                    lambda item=item: self._finish(item),
                )
            else:
                self._finish(item)

    def _finish(self, item: _Item) -> None:
        try:
            item.execute()
        finally:
            self.busy -= 1
            self.completed_by_class[item.cls] += 1
            obs.gauge(metric_names.FLOW_SERVICE_BUSY).set(self.busy)
            if self.limiter is not None:
                self.limiter.observe(self.scheduler.now() - item.arrived)
            self._drain()
