"""repro.flow — deterministic overload protection for the serving path.

Admission control, priority load shedding, and adaptive backpressure,
all over virtual time so every decision replays byte-identically:

* :class:`TokenBucket` — per-principal/per-domain rate limiting with
  lazy deterministic refill.
* :class:`WeightedFairQueue` — priority classes with weighted service
  shares (revocation/monitor > authorization checks > view reads >
  bulk puts) that never starve the lowest class.
* :class:`AimdLimiter` — AIMD concurrency window driven by observed
  virtual-time latency; clamps :class:`~repro.switchboard.rpc.RpcPipeline`
  issue windows for client-side backpressure.
* :class:`CircuitBreaker` — per-endpoint failure gate with half-open
  probing; refusals are local and instant.
* :class:`FlowController` — the server-side pipeline (bucket → WFQ →
  service slots) that :class:`~repro.switchboard.rpc.PlainRpcEndpoint`
  consults when built with a :class:`FlowConfig`.

Everything defaults **off**: an endpoint without a :class:`FlowConfig`
is byte-for-byte the pre-flow serving path, so the chaos, load, simtest,
and trace harness reports are untouched.  ``python -m repro
bench-overload`` drives the whole stack under 1x/3x/10x offered load.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .bucket import TokenBucket
from .config import (
    DEFAULT_WEIGHTS,
    PRIO_AUTH,
    PRIO_BULK,
    PRIO_MONITOR,
    PRIO_READ,
    FlowConfig,
    classify_priority,
)
from .controller import FlowController, Shed
from .limiter import AimdLimiter
from .wfq import WeightedFairQueue

__all__ = [
    "TokenBucket",
    "WeightedFairQueue",
    "AimdLimiter",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "FlowController",
    "Shed",
    "FlowConfig",
    "classify_priority",
    "DEFAULT_WEIGHTS",
    "PRIO_MONITOR",
    "PRIO_AUTH",
    "PRIO_READ",
    "PRIO_BULK",
]
