"""Flow-control configuration and the default priority classifier.

Everything in :mod:`repro.flow` is opt-in: an endpoint without a
:class:`FlowConfig` behaves byte-for-byte like it did before the
subsystem existed, which is what keeps every seeded harness report
(`BENCH_load.json`, chaos, simtest, trace) stable.  All knobs live here
so a harness can describe its overload posture in one literal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import FaultError

#: Priority classes, highest first.  Revocation/monitor traffic outranks
#: everything: a drowning authorizer that sheds the very messages that
#: would revoke bad credentials has inverted its security posture.
PRIO_MONITOR = 0
PRIO_AUTH = 1
PRIO_READ = 2
PRIO_BULK = 3

#: Default WFQ weights for the four classes above.
DEFAULT_WEIGHTS = (8.0, 4.0, 2.0, 1.0)

_MONITOR_TARGETS = frozenset({"Monitor", "RevocationMonitor", "TrustMonitor"})
_MONITOR_PREFIXES = ("monitor", "revoke", "revalidate", "heartbeat", "invalidate")
_AUTH_PREFIXES = ("check", "authorize", "is_authorized", "resolve")
_READ_PREFIXES = ("get", "fetch", "read", "peek", "list", "query")


def classify_priority(target: str, method: str) -> int:
    """Map a dispatch (target, method) onto a priority class.

    The heuristic mirrors the serving path's traffic mix: revocation and
    monitor control traffic first, authorization checks next, view/state
    reads after that, and bulk mutations last.  Harnesses with exotic
    method names pass an explicit classifier via
    :attr:`FlowConfig.classify`.
    """
    name = method.lower()
    if target in _MONITOR_TARGETS or name.startswith(_MONITOR_PREFIXES):
        return PRIO_MONITOR
    if name.startswith(_AUTH_PREFIXES):
        return PRIO_AUTH
    if name.startswith(_READ_PREFIXES):
        return PRIO_READ
    return PRIO_BULK


@dataclass(frozen=True)
class FlowConfig:
    """Knobs for one endpoint's overload protection.

    ``service_time_s`` models the virtual-time cost of serving one
    admitted request (the resource the concurrency limit guards); it
    applies whether or not admission control is ``enabled``, so an
    overload experiment can compare "same service cost, no protection"
    against "same service cost, protected" — exactly the two arms
    ``python -m repro bench-overload`` runs.
    """

    # admission control (shedding) on/off; service model applies regardless
    enabled: bool = True

    # -- service model ------------------------------------------------------
    service_time_s: float = 0.0
    """Virtual seconds one worker spends per admitted request (0 =
    dispatch immediately, the legacy behaviour)."""
    workers: int = 4
    """Concurrent service slots when ``adaptive`` is off."""

    # -- per-principal token bucket -----------------------------------------
    bucket_rate: float = 100.0
    bucket_burst: float = 20.0
    bucket_enabled: bool = True

    # -- weighted fair queue -------------------------------------------------
    weights: tuple[float, ...] = DEFAULT_WEIGHTS
    max_backlog: int = 64
    """Total queued requests before arrivals above ``exempt_class``
    are shed (class 0 is admitted regardless)."""

    # -- adaptive server concurrency (AIMD) ----------------------------------
    adaptive: bool = False
    target_latency_s: float = 0.1
    min_workers: int = 1
    max_workers: int = 32

    # -- client-side circuit breaker -----------------------------------------
    breaker_enabled: bool = True
    breaker_failures: int = 5
    breaker_window_s: float = 1.0
    breaker_open_s: float = 1.0
    breaker_probes: int = 1

    # -- shedding -------------------------------------------------------------
    retry_after_s: float = 0.05
    """Base retry-after hint for backlog sheds (bucket sheds hint the
    exact refill time instead)."""
    exempt_class: int = PRIO_MONITOR
    """Classes <= this are never shed (and bypass the token bucket)."""

    classify: Callable[[str, str], int] = field(default=classify_priority)

    def __post_init__(self) -> None:
        if self.service_time_s < 0:
            raise FaultError("service_time_s must be >= 0")
        if self.workers < 1:
            raise FaultError("workers must be >= 1")
        if self.max_backlog < 1:
            raise FaultError("max_backlog must be >= 1")
        if not self.weights or any(w <= 0 for w in self.weights):
            raise FaultError("weights must be positive and non-empty")
        if not 0 <= self.exempt_class < len(self.weights):
            raise FaultError("exempt_class must index a weight")
        if self.retry_after_s < 0:
            raise FaultError("retry_after_s must be >= 0")
