"""Seeded credential-churn benchmark: full search vs incremental engine.

``python -m repro bench-churn`` replays one seeded schedule of
delegation publishes, revocations, expiries (clock advances past TTLs),
and authorization queries through **two arms** that differ only in the
authorization engine: the full-search arm re-harvests and re-searches on
every cache miss, the incremental arm maintains reachability under
deltas (:mod:`repro.drbac.incremental`).  Both arms run the same sharded
:class:`~repro.drbac.cache.CachedAuthorizer` in front.

Costs are **deterministic work units**, not wall time: credential edges
inspected by full searches (``DrbacEngine.search_work``) + routed
repository queries (``query_count``) + incremental maintenance edges
(``IncrementalProofEngine.work``).  Virtual clocks and seeded schedules
make the JSON report byte-identical per seed; wall time is printed only
in the human-readable summary.

The headline metric is **authorize-after-revoke throughput**: for each
authorize op preceded by at least one revocation since the previous
authorize, the work spent since that previous authorize (revocation
fallout + the query itself) is attributed to it.  Every verdict is also
checked against :class:`~repro.check.oracles.DrbacOracle`, and the two
arms' transcripts must match byte for byte — the report carries both
verdicts and the CLI exits non-zero if either fails.
"""

from __future__ import annotations

import random
from typing import Any

from ..check.oracles import DrbacOracle
from ..clock import ManualClock
from ..crypto import KeyStore
from ..drbac import CachedAuthorizer, DrbacEngine
from ..errors import AuthorizationError
from ..hermetic import hermetic_counters

REPORT_SCHEMA = "bench-churn/v1"

ORGS = ("OrgA", "OrgB", "OrgC")
ROLES = {
    "OrgA": ("OrgA.Reader", "OrgA.Writer", "OrgA.Auditor"),
    "OrgB": ("OrgB.Member", "OrgB.Partner", "OrgB.Billing"),
    "OrgC": ("OrgC.Guest", "OrgC.Operator"),
}
ALL_ROLES = tuple(role for org in ORGS for role in ROLES[org])
SUBJECTS = tuple(f"user{i}" for i in range(10))

# Op mix: authorize-heavy (it is the hot path being defended), with
# enough revocation/expiry churn that invalidation dominates the cost.
P_DELEGATE = 0.18
P_REVOKE = 0.36
P_AUTHORIZE = 0.90
TTL_RATE = 0.35


def generate_schedule(seed: int, ops: int) -> list[tuple]:
    """One seeded op schedule, replayed identically by both arms.

    Ops: ``("delegate", issuer, subject, role, ttl|None)``,
    ``("revoke", issue_index)``, ``("authorize", subject, role)``,
    ``("advance", seconds)``.  Revocations reference delegations by their
    issue order so the replay needs no generation-time credential ids.
    """
    rng = random.Random(f"churn-{seed}")
    schedule: list[tuple] = []
    issued = 0
    revocable: list[int] = []
    pairs: list[tuple[str, str]] = []

    def delegate_op() -> tuple:
        nonlocal issued
        role = rng.choice(ALL_ROLES)
        issuer = role.split(".", 1)[0]
        if rng.random() < 0.30:
            # Role-subject chaining: some other org's role holds this one.
            subject = rng.choice(
                [r for r in ALL_ROLES if not r.startswith(issuer)]
            )
        else:
            subject = rng.choice(SUBJECTS)
            pairs.append((subject, role))
        ttl = round(rng.uniform(3.0, 40.0), 3) if rng.random() < TTL_RATE else None
        revocable.append(issued)
        issued += 1
        return ("delegate", issuer, subject, role, ttl)

    # Warm-up: every subject gets one live credential so the authorize
    # stream has substance from the first op.
    for subject in SUBJECTS:
        role = rng.choice(ALL_ROLES)
        revocable.append(issued)
        issued += 1
        pairs.append((subject, role))
        schedule.append(("delegate", role.split(".", 1)[0], subject, role, None))

    while len(schedule) < ops:
        draw = rng.random()
        if draw < P_DELEGATE:
            schedule.append(delegate_op())
        elif draw < P_REVOKE:
            if not revocable:
                schedule.append(delegate_op())
                continue
            target = revocable.pop(rng.randrange(len(revocable)))
            schedule.append(("revoke", target))
        elif draw < P_AUTHORIZE:
            if pairs and rng.random() < 0.65:
                # Bias toward pairs that were actually delegated at some
                # point: grants (and post-revoke re-checks of them) are
                # the interesting half of the verdict space.
                subject, role = rng.choice(pairs)
            else:
                subject, role = rng.choice(SUBJECTS), rng.choice(ALL_ROLES)
            schedule.append(("authorize", subject, role))
        else:
            schedule.append(("advance", round(rng.uniform(0.5, 4.0), 3)))
    return schedule


class ChurnBench:
    """Replays one schedule through the full and incremental arms."""

    def __init__(
        self,
        *,
        seed: int = 7,
        ops: int = 600,
        key_store: KeyStore | None = None,
    ) -> None:
        self.seed = seed
        self.ops = ops
        self.key_store = key_store or KeyStore(key_bits=512)
        self.schedule = generate_schedule(seed, ops)

    # -- one arm ---------------------------------------------------------

    def run_arm(self, *, incremental: bool) -> tuple[dict[str, Any], list[str]]:
        with hermetic_counters():
            return self._run_arm(incremental)

    def _run_arm(self, incremental: bool) -> tuple[dict[str, Any], list[str]]:
        clock = ManualClock()
        engine = DrbacEngine(
            key_store=self.key_store, clock=clock, incremental=incremental
        )
        cache = CachedAuthorizer(engine, max_entries=512, shards=8)
        oracle = DrbacOracle()
        creds: list = []
        transcript: list[str] = []
        grants = denials = oracle_mismatches = 0
        post_revoke_count = post_revoke_work = 0
        revoked_since_authorize = False
        work_at_last_authorize = 0

        def work() -> int:
            total = engine.search_work + engine.repository.query_count
            if engine.incremental is not None:
                total += engine.incremental.work
            return total

        for index, op in enumerate(self.schedule):
            if op[0] == "delegate":
                _, issuer, subject, role, ttl = op
                expires_at = clock.now() + ttl if ttl is not None else None
                delegation = engine.delegate(
                    issuer, subject, role, expires_at=expires_at
                )
                creds.append(delegation)
                oracle.delegate(
                    delegation.credential_id, subject, role, expires_at=expires_at
                )
            elif op[0] == "revoke":
                delegation = creds[op[1]]
                engine.revoke(delegation)
                oracle.revoke(delegation.credential_id)
                revoked_since_authorize = True
            elif op[0] == "authorize":
                _, subject, role = op
                try:
                    cache.authorize(subject, role)
                    verdict = True
                    grants += 1
                except AuthorizationError:
                    verdict = False
                    denials += 1
                if verdict != oracle.holds(subject, role, clock.now()):
                    oracle_mismatches += 1
                transcript.append(f"{index}:{subject}->{role}={int(verdict)}")
                spent = work() - work_at_last_authorize
                if revoked_since_authorize:
                    post_revoke_count += 1
                    post_revoke_work += spent
                work_at_last_authorize = work()
                revoked_since_authorize = False
            else:
                clock.advance(op[1])

        incr = engine.incremental
        arm = {
            "engine": "incremental" if incremental else "full",
            "work_units": work(),
            "search_edges": engine.search_work,
            "repo_queries": engine.repository.query_count,
            "incr_work": incr.work if incr is not None else 0,
            "grants": grants,
            "denials": denials,
            "oracle_mismatches": oracle_mismatches,
            "cache": {
                "hits": cache.stats.hits,
                "misses": cache.stats.misses,
                "negative_hits": cache.stats.negative_hits,
                "invalidated": cache.stats.invalidated,
                "evicted": cache.stats.evicted,
            },
            "post_revoke": {
                "count": post_revoke_count,
                "work_units": post_revoke_work,
                # Queries answered per thousand work units: the
                # authorize-after-revoke throughput the issue's
                # acceptance criterion compares across arms.
                "throughput_per_kwork": round(
                    post_revoke_count / max(post_revoke_work, 1) * 1000, 3
                ),
            },
        }
        return arm, transcript

    # -- the comparison -----------------------------------------------------

    def run(self) -> dict[str, Any]:
        full_arm, full_transcript = self.run_arm(incremental=False)
        incr_arm, incr_transcript = self.run_arm(incremental=True)
        mix: dict[str, int] = {"delegate": 0, "revoke": 0, "authorize": 0, "advance": 0}
        for op in self.schedule:
            mix[op[0]] += 1
        full_tp = full_arm["post_revoke"]["throughput_per_kwork"]
        incr_tp = incr_arm["post_revoke"]["throughput_per_kwork"]
        return {
            "schema": REPORT_SCHEMA,
            "seed": self.seed,
            "ops": self.ops,
            "mix": mix,
            "arms": {"full": full_arm, "incremental": incr_arm},
            "speedup": {
                "authorize_after_revoke": round(incr_tp / max(full_tp, 1e-9), 2),
                "overall_work": round(
                    full_arm["work_units"] / max(incr_arm["work_units"], 1), 2
                ),
            },
            "transcripts_match": full_transcript == incr_transcript,
            "oracle_agrees": (
                full_arm["oracle_mismatches"] == 0
                and incr_arm["oracle_mismatches"] == 0
            ),
        }


def run_bench_churn(
    *,
    seed: int = 7,
    ops: int = 600,
    key_store: KeyStore | None = None,
) -> dict[str, Any]:
    """Build, run, and return the churn comparison report."""
    return ChurnBench(seed=seed, ops=ops, key_store=key_store).run()
