"""Deterministic load harness: seeded virtual-time throughput runs.

``python -m repro bench-load`` drives :func:`run_bench`; tests import
:class:`LoadGenerator` directly to assert the differential guarantee
(pipelined + batched runs produce byte-identical per-client results).
"""

from .generator import LoadGenerator, LoadRun, run_bench

__all__ = ["LoadGenerator", "LoadRun", "run_bench"]
