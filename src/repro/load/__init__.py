"""Deterministic load harness: seeded virtual-time throughput runs.

``python -m repro bench-load`` drives :func:`run_bench`; tests import
:class:`LoadGenerator` directly to assert the differential guarantee
(pipelined + batched runs produce byte-identical per-client results).
``python -m repro bench-overload`` drives :func:`run_bench_overload`:
the same service model under 1x/3x/10x offered load, with and without
the :mod:`repro.flow` overload-protection stack.
``python -m repro bench-churn`` drives :func:`run_bench_churn`: one
seeded credential-churn schedule through the full-search and
incremental authorization engines, compared in deterministic work units.
``python -m repro bench-recovery`` drives :func:`run_bench_recovery`:
one seeded schedule with embedded crash/restart cycles through a
crashing :class:`~repro.durable.node.DurableNode` arm and a
never-crashed control arm, oracle-checked after every recovery.
"""

from .churn import ChurnBench, run_bench_churn
from .generator import LoadGenerator, LoadRun, classify_error, run_bench
from .overload import OverloadBench, run_bench_overload
from .recovery import RecoveryBench, run_bench_recovery

__all__ = [
    "ChurnBench",
    "LoadGenerator",
    "LoadRun",
    "classify_error",
    "run_bench",
    "OverloadBench",
    "run_bench_overload",
    "run_bench_churn",
    "RecoveryBench",
    "run_bench_recovery",
]
