"""Seeded, virtual-time load generator for the session layer.

One :class:`LoadGenerator` owns a synthetic world — ``C`` client nodes
star-linked to one server over the simulated network — and replays the
*same* seeded workload through it twice:

* **serial** — every client keeps exactly one RPC in flight (pipeline
  depth 1), transport batching off.  This is the paper-era baseline:
  each call pays a full round trip before the next leaves.
* **pipelined** — depth-``D`` RPC pipelining per client plus transport
  frame batching, the high-throughput session layer under test.

The workload is a mixed bag per client: authorization-guarded ``get`` /
``put`` calls against a key-value store, explicit cached authorization
checks (hits, negative hits, and eviction churn against a deliberately
small sharded :class:`~repro.drbac.cache.CachedAuthorizer`), reads
through a VIG-generated read-only view of the store, and two denial
flavours — an unauthorized subject (dRBAC denial, negatively cached) and
a write through the read-only view (interface narrowing).  Results are
recorded per client in **issue order**, so a serial and a pipelined run
are directly comparable: same transcripts, different clock.

Everything is deterministic: time is virtual, the workload comes from
``random.Random`` seeded per (seed, client), process-global id counters
are pinned via the chaos harness's hermetic-counter guard, and floats in
the report are rounded — two runs with one seed emit byte-identical
JSON, which the CI smoke job diffs.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
from dataclasses import dataclass, field
from typing import Any

from .. import obs
from ..crypto import KeyStore
from ..drbac import DrbacEngine
from ..drbac.cache import CachedAuthorizer
from ..errors import AuthorizationError, RpcShedError, RpcTimeoutError
from ..flow import FlowConfig
from ..hermetic import hermetic_counters
from ..net.events import EventScheduler
from ..net.simnet import Network
from ..net.transport import Transport
from ..obs import names as metric_names
from ..switchboard.rpc import PlainRpcEndpoint, RpcPipeline
from ..views import (
    InterfaceRegistry,
    ViewHint,
    ViewRuntime,
    Vig,
    infer_view_spec,
    interface_from_class,
)

SCHEMA = "bench-load/v1"

#: Role every legitimate load client holds; ``mallory`` never does.
CLIENT_ROLE = "Load.Client"

_KEYS = tuple(f"k{i}" for i in range(8))


class KVStore:
    """Authorization-guarded key-value store exported over plain RPC.

    Every operation authorizes its caller through the shared (sharded)
    :class:`CachedAuthorizer` first, so the RPC workload doubles as the
    cache workload.
    """

    def __init__(
        self, authorizer: CachedAuthorizer, *, initial: dict[str, str]
    ) -> None:
        self._authorizer = authorizer
        self._data = dict(initial)

    def _admit(self, subject: str) -> None:
        self._authorizer.authorize(subject, CLIENT_ROLE)

    def get(self, subject: str, key: str) -> str | None:
        self._admit(subject)
        return self._data.get(key)

    def put(self, subject: str, key: str, value: str) -> str | None:
        self._admit(subject)
        old = self._data.get(key)
        self._data[key] = value
        return old

    def check(self, subject: str) -> bool:
        return self._authorizer.is_authorized(subject, CLIENT_ROLE)


class _KVReadSurface:
    """Interface template: the methods the read-only view exposes."""

    def get(self, subject: str, key: str) -> str | None: ...

    def check(self, subject: str) -> bool: ...


def _read_only_view(store: KVStore) -> Any:
    """A VIG-generated view of the store that cannot ``put``."""
    registry = InterfaceRegistry()
    registry.register(interface_from_class(_KVReadSurface, "LoadReadI"))
    spec = infer_view_spec(
        "ViewKVReader", KVStore, registry, ViewHint(allow=["get", "check"])
    )
    view_cls = Vig(registry).generate(spec, KVStore)
    return view_cls(ViewRuntime(local_objects={"KVStore": store}))


@dataclass(slots=True)
class LoadRun:
    """Measurements from one pass of the workload through one world."""

    mode: str
    batching: bool
    depth: int
    ops: int
    errors: int
    makespan_s: float
    latencies: list[float] = field(repr=False)
    transcripts: list[list[str]] = field(repr=False)
    cache: dict[str, Any] = field(repr=False)
    net: dict[str, int] = field(repr=False)
    error_kinds: dict[str, int] | None = field(default=None, repr=False)
    """Errors bucketed by kind (``shed`` / ``timeout`` / ``denied`` /
    ``other``); populated only when the run executed with flow control,
    so a flow-off report keeps its exact legacy key set."""
    flight: dict[str, Any] | None = field(default=None, repr=False)
    """Flight-recorder snapshot taken as the run's world wound down; the
    report surfaces it only when the serial/pipelined transcripts
    mismatch."""
    topology: list[list] | None = field(default=None, repr=False)
    """Structural client→server span topology, captured only when the run
    executed with wire tracing (``dist``) on — the differential tests
    compare it between serial and pipelined runs.  Not part of the JSON
    report."""

    @property
    def throughput(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.ops / self.makespan_s

    def to_dict(self) -> dict[str, Any]:
        ordered = sorted(self.latencies)
        out: dict[str, Any] = {
            "mode": self.mode,
            "batching": self.batching,
            "pipeline_depth": self.depth,
            "ops": self.ops,
            "errors": self.errors,
            "makespan_s": round(self.makespan_s, 6),
            "throughput_ops_per_s": round(self.throughput, 3),
            "latency_s": {
                "mean": round(sum(ordered) / len(ordered), 6) if ordered else 0.0,
                "p50": round(_percentile(ordered, 50), 6),
                "p95": round(_percentile(ordered, 95), 6),
                "p99": round(_percentile(ordered, 99), 6),
            },
            "cache": self.cache,
            "net": self.net,
        }
        if self.error_kinds is not None:
            # Only under flow control: a flow-off report keeps its exact
            # legacy key set (the CI determinism diff depends on it).
            out["errors_by_kind"] = {
                kind: self.error_kinds[kind] for kind in sorted(self.error_kinds)
            }
        return out


def _percentile(ordered: list[float], pct: float) -> float:
    if not ordered:
        return 0.0
    index = max(0, math.ceil(pct / 100.0 * len(ordered)) - 1)
    return ordered[index]


def classify_error(exc: Exception) -> str:
    """Bucket a load-run failure for the errors-by-kind breakdown.

    ``shed`` (typed overload refusal) and ``timeout`` are mechanical;
    ``denied`` covers both dRBAC denials and interface-narrowing refusals
    — application-level no's that crossed the wire as
    :class:`~repro.switchboard.rpc.RemoteError` text.
    """
    if isinstance(exc, RpcShedError):
        return "shed"
    if isinstance(exc, RpcTimeoutError):
        return "timeout"
    message = str(exc)
    if message.startswith("AuthorizationError") or "no callable method" in message:
        return "denied"
    return "other"


class LoadGenerator:
    """Replayable seeded workload over a star of ``clients`` nodes."""

    def __init__(
        self,
        *,
        seed: int,
        clients: int = 8,
        requests: int = 40,
        depth: int = 8,
        key_store: KeyStore | None = None,
        flow: FlowConfig | None = None,
    ) -> None:
        if clients < 1:
            raise ValueError(f"clients must be >= 1, got {clients}")
        if requests < 1:
            raise ValueError(f"requests must be >= 1, got {requests}")
        self.seed = seed
        self.clients = clients
        self.requests = requests
        self.depth = depth
        self.flow = flow
        # Key material never crosses the wire, so a shared store is
        # determinism-safe and skips RSA generation in tests.
        self.key_store = key_store or KeyStore(key_bits=512)
        self._plans = [self._plan(index) for index in range(clients)]

    # -- workload -----------------------------------------------------------

    def _plan(self, client: int) -> list[tuple[str, str, list]]:
        """The client's op sequence: (target, method, args) per request."""
        rng = random.Random(f"load-{self.seed}-{client}")
        subject = f"client-{client}"
        ops: list[tuple[str, str, list]] = []
        for n in range(self.requests):
            # Keys are namespaced per client: the store is shared, so
            # cross-client writes to one key would make a client's reads
            # depend on global interleaving — which pipelining reorders —
            # and the serial/pipelined transcripts could never match.
            key = f"c{client}-{rng.choice(_KEYS)}"
            roll = rng.random()
            if roll < 0.35:
                ops.append(("KVStore", "get", [subject, key]))
            elif roll < 0.60:
                ops.append(("KVStore", "put", [subject, key, f"c{client}-n{n}"]))
            elif roll < 0.75:
                ops.append(("KVStore", "check", [subject]))
            elif roll < 0.85:
                ops.append(("StoreView", "get", [subject, key]))
            elif roll < 0.92:
                # dRBAC denial: mallory holds no Load.Client credential.
                ops.append(("KVStore", "get", ["mallory", key]))
            else:
                # Interface narrowing: the view exposes no put at all.
                ops.append(("StoreView", "put", [subject, key, "nope"]))
        return ops

    # -- one measured pass --------------------------------------------------

    def run(self, *, pipelined: bool, batching: bool) -> LoadRun:
        """Build a fresh world and push the whole workload through it."""
        with hermetic_counters(), obs.scoped(enabled=True) as registry:
            scheduler = EventScheduler()
            obs.set_tracer_clock(scheduler)
            network = Network()
            network.add_node("server", domain="LOAD")
            for index in range(self.clients):
                name = f"client-{index}"
                network.add_node(name, domain="LOAD")
                network.add_link(
                    name,
                    "server",
                    latency_s=0.004,
                    bandwidth_bps=8e6,
                    secure=False,
                )
            transport = Transport(network, scheduler, loss_seed=self.seed)
            if batching:
                transport.configure_batching(max_frames=8, window=0.002)

            engine = DrbacEngine(key_store=self.key_store, clock=scheduler)
            for index in range(self.clients):
                engine.delegate("Load", f"client-{index}", CLIENT_ROLE)
            # Small and sharded on purpose: clients + mallory overflow it,
            # so the run exercises LRU churn, not just a warm cache.
            authorizer = CachedAuthorizer(engine, max_entries=8, shards=4)
            store = KVStore(
                authorizer,
                initial={
                    f"c{index}-{key}": f"init-{index}-{key}"
                    for index in range(self.clients)
                    for key in _KEYS
                },
            )
            server_rpc = PlainRpcEndpoint(transport, "server", flow=self.flow)
            server_rpc.exporter.export("KVStore", store)
            server_rpc.exporter.export("StoreView", _read_only_view(store))

            depth = self.depth if pipelined else 1
            latencies: list[float] = []
            pipelines: list[RpcPipeline] = []
            for index in range(self.clients):
                rpc = PlainRpcEndpoint(transport, f"client-{index}")

                def caller(
                    target: str, method: str, args: list, *, rpc=rpc
                ) -> Any:
                    issued_at = scheduler.now()
                    pending = rpc.call("server", target, method, args)
                    pending.add_done_callback(
                        lambda _done: latencies.append(scheduler.now() - issued_at)
                    )
                    return pending

                pipeline = RpcPipeline(caller, scheduler, depth=depth)
                for op in self._plans[index]:
                    pipeline.call(*op)
                pipelines.append(pipeline)

            transcripts: list[list[str]] = []
            errors = 0
            error_kinds: dict[str, int] = {}
            for client_index, pipeline in enumerate(pipelines):
                entries: list[str] = []
                for op_index, result in enumerate(
                    pipeline.drain(return_exceptions=True)
                ):
                    if isinstance(result, Exception):
                        errors += 1
                        kind = classify_error(result)
                        error_kinds[kind] = error_kinds.get(kind, 0) + 1
                        obs.event(
                            "load.error", client=client_index, op=op_index,
                            error=type(result).__name__, kind=kind,
                        )
                        entries.append(f"<{type(result).__name__}:{result}>")
                    else:
                        entries.append(repr(result))
                transcripts.append(entries)

            stats = authorizer.stats
            return LoadRun(
                mode="pipelined" if pipelined else "serial",
                batching=batching,
                depth=depth,
                ops=self.clients * self.requests,
                errors=errors,
                makespan_s=scheduler.now(),
                latencies=latencies,
                transcripts=transcripts,
                cache={
                    "hits": stats.hits,
                    "misses": stats.misses,
                    "negative_hits": stats.negative_hits,
                    "evicted": stats.evicted,
                    "invalidated": stats.invalidated,
                    "hit_rate": round(stats.hit_rate, 4),
                },
                error_kinds=error_kinds if self.flow is not None else None,
                net={
                    "messages_sent": transport.stats.messages_sent,
                    "messages_delivered": transport.stats.messages_delivered,
                    "bytes_sent": transport.stats.bytes_sent,
                    "batches_sent": transport.stats.batches_sent,
                    "frames_coalesced": transport.stats.frames_coalesced,
                    "batch_flushes": registry.counter_value(
                        metric_names.NET_BATCH_FLUSHES
                    ),
                    "pipeline_calls": registry.counter_value(
                        metric_names.RPC_PIPELINE_CALLS
                    ),
                },
                # Captured while the scoped obs state is still alive; the
                # report only surfaces it on a transcript mismatch.
                flight=obs.flight_snapshot("load.transcript_mismatch"),
                topology=(
                    _trace_topology(obs.get_tracer())
                    if obs.dist_enabled()
                    else None
                ),
            )

    # -- the comparison report ----------------------------------------------

    def report(self) -> dict[str, Any]:
        """Serial vs pipelined+batched, with the differential check inline."""
        serial = self.run(pipelined=False, batching=False)
        fast = self.run(pipelined=True, batching=True)
        speedup = (
            serial.makespan_s / fast.makespan_s if fast.makespan_s > 0 else 0.0
        )
        match = serial.transcripts == fast.transcripts
        return {
            "schema": SCHEMA,
            "seed": self.seed,
            "clients": self.clients,
            "requests_per_client": self.requests,
            "serial": serial.to_dict(),
            "pipelined": fast.to_dict(),
            "speedup": round(speedup, 3),
            "transcripts_match": match,
            "transcript_digest": transcript_digest(fast.transcripts),
            # Post-mortem payload only when the differential check failed;
            # None on clean runs keeps the report byte-stable.
            "flight": None if match else {
                "serial": serial.flight,
                "pipelined": fast.flight,
            },
        }


def _trace_topology(tracer: obs.Tracer) -> list[list]:
    """Per-call ``[node, target, method, server_spans]`` rows, grouped by
    client and ordered by issue within each client.

    This is the *structural* shape of the distributed trace — which calls
    left which client and how many server-side spans stitched to each —
    deliberately excluding transport decoration (``net.transmit`` spans,
    batch membership) and timing, both of which batching and pipelining
    legitimately change.
    """
    servers_by_trace: dict[int, int] = {}
    for root in tracer.finished:
        if root.name == "rpc.server":
            servers_by_trace[root.trace_id] = (
                servers_by_trace.get(root.trace_id, 0) + 1
            )
    calls = []
    for root in tracer.finished:
        if root.name == "rpc.client":
            calls.append((
                str(root.attributes.get("node")),
                root.start,
                root.span_id,
                str(root.attributes.get("target")),
                str(root.attributes.get("method")),
                servers_by_trace.get(root.trace_id, 0),
            ))
    # Span ids mint in issue order, so (node, start, span_id) reproduces
    # per-client issue order regardless of completion interleaving.
    calls.sort(key=lambda c: (c[0], c[1], c[2]))
    return [[node, target, method, servers]
            for node, _start, _sid, target, method, servers in calls]


def transcript_digest(transcripts: list[list[str]]) -> str:
    payload = json.dumps(transcripts, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()


def run_bench(
    *,
    seed: int,
    clients: int,
    requests: int = 40,
    depth: int = 8,
    key_store: KeyStore | None = None,
) -> dict[str, Any]:
    """Build, run, and report — the ``repro bench-load`` workhorse."""
    generator = LoadGenerator(
        seed=seed,
        clients=clients,
        requests=requests,
        depth=depth,
        key_store=key_store,
    )
    return generator.report()
