"""Seeded crash-recovery benchmark: WAL replay + delta catch-up cost.

``python -m repro bench-recovery`` replays one seeded schedule of
delegation publishes, revocations, clock advances, and authorizations
through **two arms** that share a single :class:`~repro.durable.node.UpdateFeed`
and differ only in fate: the *crashy* arm's :class:`~repro.durable.node.DurableNode`
is crashed several times mid-run — losing its repository shards,
incremental indexes, monitor subscriptions, and cache to volatility —
while the *control* arm never goes down.  While the crashy arm is dead,
delegations keep publishing and revocations keep landing on the feed;
each restart tears a seeded number of bytes off the WAL tail before the
recovery protocol replays snapshot+log and pulls the missed gap from
the feed.

After every recovery the bench runs a **verdict battery**: every
(subject, role) pair in the universe is authorized on both arms and
checked against :class:`~repro.check.oracles.DrbacOracle`.  The report
gates on three facts — the arms' verdict transcripts match byte for
byte, every verdict agrees with the oracle, and the recovered node's
durable-state digest equals the never-crashed node's — and the CLI
exits non-zero if any fails.  Recovery cost is reported in
**deterministic work units** (WAL records replayed + catch-up updates +
incremental re-fold edges), not wall time, so the JSON report is
byte-identical per seed.

``mutation="skip-catchup"`` disables the gap pull in the crashy arm,
which the gates must flag — the bench's own built-in differential test.
"""

from __future__ import annotations

import random
from typing import Any

from ..check.oracles import DrbacOracle
from ..clock import ManualClock
from ..crypto import KeyStore
from ..drbac import CachedAuthorizer, DrbacEngine
from ..durable import DurableNode, UpdateFeed
from ..errors import AuthorizationError
from ..hermetic import hermetic_counters

REPORT_SCHEMA = "bench-recovery/v1"

ORGS = ("OrgA", "OrgB")
ROLES = {
    "OrgA": ("OrgA.Reader", "OrgA.Writer"),
    "OrgB": ("OrgB.Member", "OrgB.Partner"),
}
ALL_ROLES = ROLES["OrgA"] + ROLES["OrgB"]
SUBJECTS = tuple(f"user{i}" for i in range(6))

#: WAL tail bytes torn per restart are drawn from [0, MAX_TORN_TAIL].
MAX_TORN_TAIL = 48


def generate_schedule(seed: int, ops: int, crashes: int) -> list[tuple]:
    """One seeded op schedule with embedded crash/restart cycles.

    Ops: ``("delegate", issuer, subject, role, ttl|None)``,
    ``("revoke", issue_index)``, ``("authorize", subject, role)``,
    ``("advance", seconds)``, ``("crash",)``, ``("restart", torn_bytes)``,
    ``("battery",)``.  Each crash cycle is: crash, a downtime segment of
    delegations/revocations/advances (no authorizations — the node is
    unreachable), restart with a seeded torn tail, then a full
    (subject, role) verdict battery.
    """
    rng = random.Random(f"recovery-{seed}")
    schedule: list[tuple] = []
    issued = 0
    revocable: list[int] = []

    def delegate_op() -> tuple:
        nonlocal issued
        role = rng.choice(ALL_ROLES)
        issuer = role.split(".", 1)[0]
        if rng.random() < 0.25:
            # Cross-org role chaining keeps multi-hop proofs in play.
            subject = rng.choice(
                [r for r in ALL_ROLES if not r.startswith(issuer)]
            )
        else:
            subject = rng.choice(SUBJECTS)
        ttl = round(rng.uniform(4.0, 30.0), 3) if rng.random() < 0.3 else None
        revocable.append(issued)
        issued += 1
        return ("delegate", issuer, subject, role, ttl)

    # Warm-up: every subject holds something before the first crash.
    for subject in SUBJECTS:
        role = rng.choice(ALL_ROLES)
        revocable.append(issued)
        issued += 1
        schedule.append(("delegate", role.split(".", 1)[0], subject, role, None))

    live = max(1, ops // (crashes + 1))
    for cycle in range(crashes + 1):
        for _ in range(live):
            draw = rng.random()
            if draw < 0.25:
                schedule.append(delegate_op())
            elif draw < 0.40 and revocable:
                target = revocable.pop(rng.randrange(len(revocable)))
                schedule.append(("revoke", target))
            elif draw < 0.85:
                schedule.append(
                    ("authorize", rng.choice(SUBJECTS), rng.choice(ALL_ROLES))
                )
            else:
                schedule.append(("advance", round(rng.uniform(0.5, 3.0), 3)))
        if cycle < crashes:
            schedule.append(("crash",))
            for _ in range(max(2, live // 4)):
                draw = rng.random()
                if draw < 0.45:
                    schedule.append(delegate_op())
                elif draw < 0.80 and revocable:
                    target = revocable.pop(rng.randrange(len(revocable)))
                    schedule.append(("revoke", target))
                else:
                    schedule.append(("advance", round(rng.uniform(0.5, 3.0), 3)))
            schedule.append(("restart", rng.randrange(MAX_TORN_TAIL + 1)))
            schedule.append(("battery",))
    return schedule


class RecoveryBench:
    """Replays one schedule through the crashy and control arms."""

    def __init__(
        self,
        *,
        seed: int = 7,
        ops: int = 360,
        crashes: int = 4,
        key_store: KeyStore | None = None,
        mutation: str | None = None,
    ) -> None:
        self.seed = seed
        self.ops = ops
        self.crashes = crashes
        self.key_store = key_store or KeyStore(key_bits=512)
        self.mutation = mutation
        self.schedule = generate_schedule(seed, ops, crashes)

    def run(self) -> dict[str, Any]:
        with hermetic_counters():
            return self._run()

    def _run(self) -> dict[str, Any]:
        clock = ManualClock()
        # One signer issues credentials; both arms receive them over the
        # shared feed, exactly like replicas of one authority.
        signer = DrbacEngine(
            key_store=self.key_store, clock=clock, incremental=False
        )
        feed = UpdateFeed()
        oracle = DrbacOracle()

        def build_arm(mutation: str | None):
            engine = DrbacEngine(
                key_store=self.key_store, clock=clock, incremental=True
            )
            cache = CachedAuthorizer(engine, max_entries=256, shards=4)
            node = DurableNode(
                engine=engine, cache=cache, feed=feed,
                compact_every=32, mutation=mutation,
            )
            return cache, node

        cache_crashy, node_crashy = build_arm(self.mutation)
        cache_control, node_control = build_arm(None)

        creds: list = []
        transcripts: dict[str, list[str]] = {"crashy": [], "control": []}
        grants = denials = oracle_mismatches = 0
        recoveries: list[dict[str, int]] = []
        digests_match = True
        mix = {"delegate": 0, "revoke": 0, "authorize": 0, "advance": 0}
        pending_torn = 0

        def verdict(cache: CachedAuthorizer, subject: str, role: str) -> bool:
            try:
                cache.authorize(subject, role)
                return True
            except AuthorizationError:
                return False

        def check_pair(index: int, subject: str, role: str) -> tuple[bool, bool]:
            nonlocal grants, denials, oracle_mismatches
            expected = oracle.holds(subject, role, clock.now())
            for name, cache in (
                ("crashy", cache_crashy), ("control", cache_control)
            ):
                got = verdict(cache, subject, role)
                transcripts[name].append(f"{index}:{subject}->{role}={int(got)}")
                if got != expected:
                    oracle_mismatches += 1
            if expected:
                grants += 1
            else:
                denials += 1
            return expected, expected

        for index, op in enumerate(self.schedule):
            kind = op[0]
            if kind == "delegate":
                _, issuer, subject, role, ttl = op
                expires_at = clock.now() + ttl if ttl is not None else None
                delegation = signer.delegate(
                    issuer, subject, role, expires_at=expires_at, publish=False
                )
                creds.append(delegation)
                feed.publish(delegation)
                oracle.delegate(
                    delegation.credential_id, subject, role, expires_at=expires_at
                )
                mix["delegate"] += 1
            elif kind == "revoke":
                delegation = creds[op[1]]
                feed.revoke(delegation)
                oracle.revoke(delegation.credential_id)
                mix["revoke"] += 1
            elif kind == "authorize":
                if node_crashy.up:
                    check_pair(index, op[1], op[2])
                mix["authorize"] += 1
            elif kind == "advance":
                clock.advance(op[1])
                mix["advance"] += 1
            elif kind == "crash":
                node_crashy.crash()
            elif kind == "restart":
                pending_torn = op[1]
                report = node_crashy.restart(torn_tail_bytes=pending_torn)
                recoveries.append(report.to_dict())
            elif kind == "battery":
                for subject in SUBJECTS:
                    for role in ALL_ROLES:
                        check_pair(index, subject, role)
                if node_crashy.state_digest() != node_control.state_digest():
                    digests_match = False

        total = {
            "restarts": len(recoveries),
            "work_units": sum(r["work_units"] for r in recoveries),
            "wal_records_replayed": sum(
                r["wal_records_replayed"] for r in recoveries
            ),
            "catchup_updates": sum(r["catchup_updates"] for r in recoveries),
            "torn_bytes": sum(r["torn_bytes"] for r in recoveries),
            "cache_evicted": sum(r["cache_evicted"] for r in recoveries),
            "cache_kept": sum(r["cache_kept"] for r in recoveries),
        }
        verdicts_match = transcripts["crashy"] == transcripts["control"]
        oracle_agrees = oracle_mismatches == 0
        ok = verdicts_match and oracle_agrees and digests_match
        return {
            "schema": REPORT_SCHEMA,
            "seed": self.seed,
            "ops": self.ops,
            "crashes": self.crashes,
            "mutation": self.mutation,
            "mix": mix,
            "feed_seqno": feed.seqno,
            "verdicts": {
                "checked": len(transcripts["control"]),
                "grants": grants,
                "denials": denials,
                "oracle_mismatches": oracle_mismatches,
            },
            "recoveries": recoveries,
            "recovery": total,
            "verdicts_match": verdicts_match,
            "oracle_agrees": oracle_agrees,
            "digests_match": digests_match,
            "ok": ok,
        }


def run_bench_recovery(
    *,
    seed: int = 7,
    ops: int = 360,
    crashes: int = 4,
    key_store: KeyStore | None = None,
    mutation: str | None = None,
) -> dict[str, Any]:
    """Build, run, and return the crash-recovery comparison report."""
    return RecoveryBench(
        seed=seed, ops=ops, crashes=crashes,
        key_store=key_store, mutation=mutation,
    ).run()
