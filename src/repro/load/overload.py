"""Overload bench: 1x/3x/10x offered load, with and without flow control.

One :class:`OverloadBench` drives the same seeded open-loop workload —
Poisson arrivals across four priority classes (revocation monitoring,
authorization checks, registry reads, bulk blob puts) — through two
otherwise-identical worlds per load multiplier:

* **without flow** — admission control disabled.  The service model
  (``workers`` slots × ``service_time_s`` per request) still applies, so
  past capacity the queue grows without bound and latency collapses:
  requests complete, but far too late to count.
* **with flow** — the full :mod:`repro.flow` stack: per-client token
  buckets, a bounded weighted-fair backlog, and typed sheds carrying
  retry-after hints.  Excess load is refused *early and cheaply*, so
  what is admitted completes within the SLO.

**Goodput** is the honest metric: completions within ``slo_s`` of issue,
per second of offered-load window.  A report asserts three invariants —
at 10x the protected arm keeps ≥70% of its 1x goodput, the monitor
class is never shed, and the lowest class still gets its weighted share
(completions > 0, i.e. fairness, not starvation).

Everything is deterministic over virtual time: arrivals come from
``random.Random`` seeded per (seed, multiplier, client), floats are
rounded, and the flight-recorder payload is attached only when an
invariant fails — two runs with one seed emit byte-identical JSON,
which CI diffs.
"""

from __future__ import annotations

import random
from typing import Any

from .. import obs
from ..errors import RpcShedError
from ..flow import PRIO_BULK, PRIO_MONITOR, FlowConfig, classify_priority
from ..hermetic import hermetic_counters
from ..net.events import EventScheduler
from ..net.simnet import Network
from ..net.transport import Transport
from ..switchboard.rpc import PlainRpcEndpoint
from .generator import _percentile

SCHEMA = "bench-overload/v1"

MULTIPLIERS = (1, 3, 10)

#: Class mix of the offered load: a sliver of control traffic, a healthy
#: chunk of authorization checks, reads dominating, and a heavy tail of
#: bulk writes — the traffic shape a shared authorizer actually sees.
_MIX = (
    (0.05, "RevocationMonitor", "revalidate"),
    (0.30, "Authorizer", "check_access"),
    (0.70, "Registry", "get_entry"),
    (1.01, "BlobStore", "put_blob"),
)


class OverloadService:
    """One exported object wearing four target names, one per class."""

    def __init__(self) -> None:
        self.served = [0, 0, 0, 0]

    def revalidate(self, token: str) -> str:
        self.served[PRIO_MONITOR] += 1
        return f"ok-{token}"

    def check_access(self, subject: str) -> bool:
        self.served[1] += 1
        return True

    def get_entry(self, key: str) -> str:
        self.served[2] += 1
        return f"v-{key}"

    def put_blob(self, key: str, size: int) -> int:
        self.served[PRIO_BULK] += 1
        return size


class OverloadBench:
    """Seeded 2-arm × 3-multiplier overload experiment."""

    def __init__(
        self,
        *,
        seed: int,
        clients: int = 4,
        duration_s: float = 1.5,
        base_rps: float = 160.0,
        service_time_s: float = 0.01,
        workers: int = 2,
        slo_s: float = 0.25,
    ) -> None:
        if clients < 1:
            raise ValueError(f"clients must be >= 1, got {clients}")
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        self.seed = seed
        self.clients = clients
        self.duration_s = duration_s
        self.base_rps = base_rps
        self.service_time_s = service_time_s
        self.workers = workers
        self.slo_s = slo_s

    @property
    def capacity_rps(self) -> float:
        """What the service model can actually absorb."""
        return self.workers / self.service_time_s

    # -- workload ------------------------------------------------------------

    def _plan(self, multiplier: int, client: int) -> list[tuple[float, str, str, list]]:
        """Open-loop arrivals for one client at one offered rate.

        Exponential interarrivals (Poisson process) so overload arrives
        in realistic bursts, not a metronome the token bucket could
        trivially pace.  The plan depends only on (seed, multiplier,
        client): both arms of a multiplier replay identical traffic.
        """
        rate = self.base_rps * multiplier / self.clients
        rng = random.Random(f"overload-{self.seed}-{multiplier}-{client}")
        plan: list[tuple[float, str, str, list]] = []
        at = rng.expovariate(rate)
        n = 0
        while at < self.duration_s:
            roll = rng.random()
            for ceiling, target, method in _MIX:
                if roll < ceiling:
                    break
            if method == "put_blob":
                args: list = [f"c{client}-b{n}", 64]
            elif method == "revalidate":
                args = [f"tok-{client}-{n}"]
            else:
                args = [f"c{client}-k{n % 16}"]
            plan.append((at, target, method, args))
            at += rng.expovariate(rate)
            n += 1
        return plan

    def _flow(self, enabled: bool) -> FlowConfig:
        return FlowConfig(
            enabled=enabled,
            service_time_s=self.service_time_s,
            workers=self.workers,
            # Per-client bucket: 4 × 75 = 300 admitted rps tops, so the
            # bounded backlog — not the bucket alone — does the final
            # shaping down to the ~200 rps the slots can serve.
            bucket_rate=75.0,
            bucket_burst=20.0,
            # Worst-case queue wait 32 × (0.01 / 2) = 0.16s: everything
            # admitted can still complete inside the 0.25s SLO.
            max_backlog=32,
            retry_after_s=0.05,
        )

    # -- one arm -------------------------------------------------------------

    def _run_arm(self, multiplier: int, enabled: bool) -> dict[str, Any]:
        plans = [self._plan(multiplier, c) for c in range(self.clients)]
        with hermetic_counters(), obs.scoped(enabled=True):
            scheduler = EventScheduler()
            obs.set_tracer_clock(scheduler)
            network = Network()
            network.add_node("server", domain="LOAD")
            for index in range(self.clients):
                name = f"client-{index}"
                network.add_node(name, domain="LOAD")
                network.add_link(
                    name, "server", latency_s=0.002, bandwidth_bps=8e6,
                    secure=False,
                )
            transport = Transport(network, scheduler, loss_seed=self.seed)
            server = PlainRpcEndpoint(
                transport, "server", flow=self._flow(enabled)
            )
            service = OverloadService()
            for target_name in (
                "RevocationMonitor", "Authorizer", "Registry", "BlobStore"
            ):
                server.exporter.export(target_name, service)

            classes = len(self._flow(enabled).weights)
            good = [0] * classes
            late = [0] * classes
            shed = [0] * classes
            errors = 0
            latencies: list[float] = []

            def issue(rpc: PlainRpcEndpoint, target: str, method: str,
                      args: list) -> None:
                cls = classify_priority(target, method)
                issued_at = scheduler.now()

                def settle(done: Any) -> None:
                    nonlocal errors
                    if done._exception is not None:
                        if isinstance(done._exception, RpcShedError):
                            shed[cls] += 1
                        else:
                            errors += 1
                        return
                    if done._error is not None:
                        errors += 1
                        return
                    sojourn = scheduler.now() - issued_at
                    latencies.append(sojourn)
                    if sojourn <= self.slo_s:
                        good[cls] += 1
                    else:
                        late[cls] += 1

                rpc.call("server", target, method, args).add_done_callback(settle)

            offered = 0
            for index in range(self.clients):
                rpc = PlainRpcEndpoint(transport, f"client-{index}")
                for at, target, method, args in plans[index]:
                    offered += 1
                    scheduler.schedule(
                        at,
                        lambda rpc=rpc, t=target, m=method, a=args: issue(
                            rpc, t, m, a
                        ),
                    )
            scheduler.run(max_events=2_000_000)

            controller = server.controller
            assert controller is not None
            ordered = sorted(latencies)
            goodput = sum(good) / self.duration_s
            return {
                "requests": offered,
                "completed": sum(good) + sum(late),
                "completed_within_slo": sum(good),
                "goodput_rps": round(goodput, 3),
                "shed": sum(shed),
                "errors": errors,
                "makespan_s": round(scheduler.now(), 6),
                "latency_s": {
                    "p50": round(_percentile(ordered, 50), 6),
                    "p95": round(_percentile(ordered, 95), 6),
                    "p99": round(_percentile(ordered, 99), 6),
                },
                "by_class": {
                    "good": good,
                    "late": late,
                    "shed": shed,
                    "admitted": list(controller.admitted_by_class),
                    "completed": list(controller.completed_by_class),
                },
                # Captured while the scoped obs world is alive; the report
                # surfaces it only when an invariant fails.
                "_flight": obs.flight_snapshot("overload.invariant"),
            }

    # -- the report ----------------------------------------------------------

    def report(self) -> dict[str, Any]:
        arms: list[dict[str, Any]] = []
        flights: dict[str, Any] = {}
        for multiplier in MULTIPLIERS:
            without = self._run_arm(multiplier, enabled=False)
            with_flow = self._run_arm(multiplier, enabled=True)
            flights[f"{multiplier}x"] = with_flow.pop("_flight")
            without.pop("_flight")
            arms.append({
                "multiplier": multiplier,
                "offered_rps": round(self.base_rps * multiplier, 3),
                "without_flow": without,
                "with_flow": with_flow,
            })

        one_x = arms[0]["with_flow"]
        ten_x = arms[-1]["with_flow"]
        invariants = {
            # Past 10x offered load the protected arm must keep at least
            # 70% of its uncontended goodput — shedding early is cheap,
            # collapsing is not.
            "goodput_10x_ge_70pct_of_1x": (
                ten_x["goodput_rps"] >= 0.7 * one_x["goodput_rps"]
            ),
            # Revocation/monitor traffic is exempt from admission
            # control: shedding it would invert the security posture.
            "monitor_never_shed": all(
                arm["with_flow"]["by_class"]["shed"][PRIO_MONITOR] == 0
                for arm in arms
            ),
            # WFQ gives the lowest class its weighted share, not zero.
            "bulk_not_starved_at_10x": (
                ten_x["by_class"]["completed"][PRIO_BULK] > 0
            ),
        }
        ok = all(invariants.values())
        return {
            "schema": SCHEMA,
            "seed": self.seed,
            "clients": self.clients,
            "duration_s": self.duration_s,
            "base_rps": self.base_rps,
            "capacity_rps": round(self.capacity_rps, 3),
            "slo_s": self.slo_s,
            "service_time_s": self.service_time_s,
            "workers": self.workers,
            "arms": arms,
            "invariants": {**invariants, "ok": ok},
            # Post-mortem payload only on a violated invariant; None on
            # clean runs keeps the report byte-stable.
            "flight": None if ok else flights,
        }


def run_bench_overload(
    *,
    seed: int,
    clients: int = 4,
    duration_s: float = 1.5,
) -> dict[str, Any]:
    """Build, run, and report — the ``repro bench-overload`` workhorse."""
    bench = OverloadBench(seed=seed, clients=clients, duration_s=duration_s)
    return bench.report()
