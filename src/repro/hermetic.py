"""Hermetic execution guards shared by every deterministic harness.

Call ids, credential serials, connection ids, and planner instance ids
are process-global monotonic counters; their *digit counts* leak into
frame sizes and therefore into simulated transmission delay.  Pinning
them for the scope of a run makes two in-process runs byte-identical,
not just two freshly started CLI invocations.

The chaos harness (:mod:`repro.faults.runner`), the load generator
(:mod:`repro.load.generator`), the simulation tester
(:mod:`repro.check`), and the shared test fixture
(``tests/conftest.py``) all run inside :func:`hermetic_counters`.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Iterator


@contextmanager
def hermetic_counters() -> Iterator[None]:
    """Run with fresh process-global id counters, restoring them after.

    The original iterators are restored on exit so surrounding code keeps
    its id-uniqueness guarantees.
    """
    from .drbac import delegation as delegation_mod
    from .psf import planner as planner_mod
    from .switchboard import channel as channel_mod

    # RPC call ids stopped being process-global when endpoints and
    # channels grew per-instance CallIdPools (correlation-id reuse), so
    # only the remaining module-level counters need pinning here.
    saved = (
        channel_mod._conn_ids,
        delegation_mod._serial,
        planner_mod._instance_counter,
    )
    channel_mod._conn_ids = itertools.count(1)
    delegation_mod._serial = itertools.count(1)
    planner_mod._instance_counter = itertools.count(1)
    try:
        yield
    finally:
        (
            channel_mod._conn_ids,
            delegation_mod._serial,
            planner_mod._instance_counter,
        ) = saved
