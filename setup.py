"""Thin shim so legacy editable installs work on environments whose
setuptools predates PEP 660 (all metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
