"""Table 1 — the three dRBAC delegation types.

Regenerates the table (type, shape, example rendering) and times the
credential lifecycle per type: issue (sign) and authenticate (verify).
"""

from __future__ import annotations

import pytest

from repro.drbac.delegation import DelegationType, issue
from repro.drbac.model import AttrScalar, AttrSet, EntityRef, Role

from conftest import print_table


@pytest.fixture(scope="module")
def issuers(key_store):
    return {name: key_store.identity(name) for name in ("Comp.NY", "Comp.SD")}


def _examples(issuers):
    """One credential per Table 1 row."""
    ny, sd = issuers["Comp.NY"], issuers["Comp.SD"]
    return {
        DelegationType.SELF_CERTIFYING: issue(
            ny, EntityRef("Alice"), Role("Comp.NY", "Member"),
            attributes={"Level": AttrScalar(1)},
        ),
        DelegationType.THIRD_PARTY: issue(
            sd, Role("Inc.SE", "Member"), Role("Comp.NY", "Partner"),
            attributes={"Level": AttrScalar(1)},
        ),
        DelegationType.ASSIGNMENT: issue(
            ny, EntityRef("Comp.SD"), Role("Comp.NY", "Partner"), assignment=True,
            attributes={"Level": AttrScalar(1)},
        ),
    }


def test_table1_shape(benchmark, issuers, key_store):
    """Regenerate Table 1 and check every classification.

    The benchmarked kernel is the full three-credential issue pass.
    """
    examples = benchmark(lambda: _examples(issuers))
    rows = []
    for kind, delegation in examples.items():
        assert delegation.delegation_type is kind
        assert delegation.verify_signature(key_store.public(delegation.issuer))
        rows.append([kind.value, str(delegation)])
    print_table("Table 1: dRBAC delegation types", ["type", "credential"], rows)
    assert str(examples[DelegationType.ASSIGNMENT]).count("'") == 1


@pytest.mark.parametrize("kind", list(DelegationType))
def test_issue_cost(benchmark, issuers, kind):
    """Time to create + sign one delegation of each type."""
    examples = _examples(issuers)
    template = examples[kind]
    issuer = issuers[template.issuer]

    def run():
        return issue(
            issuer,
            template.subject,
            template.role,
            assignment=kind is DelegationType.ASSIGNMENT,
            attributes=template.attributes,
        )

    result = benchmark(run)
    assert result.delegation_type is kind


@pytest.mark.parametrize("kind", list(DelegationType))
def test_verify_cost(benchmark, issuers, key_store, kind):
    """Time to authenticate one delegation of each type."""
    delegation = _examples(issuers)[kind]
    public = key_store.public(delegation.issuer)
    assert benchmark(lambda: delegation.verify_signature(public))
