"""E-SWB — Switchboard channel mechanics.

Times channel establishment (handshake with signatures, credential
evaluation, and DH), the per-call overhead against plain RMI, and — on the
virtual clock — heartbeat RTT reporting and revocation-notification
latency (the continuous-monitoring ablation DESIGN.md calls out).
"""

from __future__ import annotations

import pytest

from repro.drbac import DrbacEngine
from repro.net import EventScheduler, Network, Transport
from repro.switchboard import (
    AcceptAllAuthorizer,
    AuthorizationSuite,
    ChannelState,
    PlainRpcEndpoint,
    RoleAuthorizer,
    SwitchboardEndpoint,
)

from conftest import print_table

LINK_LATENCY = 0.005


class Echo:
    def ping(self, x):
        return x


def _world(key_store):
    engine = DrbacEngine(key_store=key_store)
    net = Network()
    net.add_node("c")
    net.add_node("s")
    net.add_link("c", "s", latency_s=LINK_LATENCY, secure=False)
    scheduler = EventScheduler()
    transport = Transport(net, scheduler)
    client_ep = SwitchboardEndpoint(transport, "c")
    server_ep = SwitchboardEndpoint(transport, "s")
    server_ep.export("echo", Echo())
    return engine, transport, client_ep, server_ep


def test_handshake_cost(benchmark, key_store):
    """Full authenticated+authorized channel establishment."""
    engine, transport, client_ep, server_ep = _world(key_store)
    cred = engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
    server_ep.listen(
        "echo",
        AuthorizationSuite(
            identity=engine.identity("EchoSvc"),
            authorizer=RoleAuthorizer(engine, "Comp.NY.Member"),
        ),
    )
    suite = AuthorizationSuite(identity=engine.identity("Alice"), credentials=[cred])

    def connect():
        return client_ep.connect("s", "echo", suite).wait()

    connection = benchmark(connect)
    assert connection.state is ChannelState.OPEN


def test_switchboard_call_cost(benchmark, key_store):
    """Per-call cost over an established secure channel."""
    engine, transport, client_ep, server_ep = _world(key_store)
    server_ep.listen("echo", AuthorizationSuite(identity=engine.identity("EchoSvc")))
    connection = client_ep.connect(
        "s", "echo", AuthorizationSuite(identity=engine.identity("Alice"))
    ).wait()

    assert benchmark(lambda: connection.call_sync("echo", "ping", [42])) == 42


def test_plain_rpc_call_cost(benchmark, key_store):
    """The unencrypted baseline for per-call overhead."""
    engine, transport, client_ep, server_ep = _world(key_store)
    rpc_c = PlainRpcEndpoint(transport, "c")
    rpc_s = PlainRpcEndpoint(transport, "s")
    rpc_s.exporter.export("echo", Echo())

    assert benchmark(lambda: rpc_c.call_sync("s", "echo", "ping", [42])) == 42


def test_heartbeat_and_revocation_latency(benchmark, key_store):
    """Virtual-clock properties: RTT report accuracy and the lag between a
    revocation at the home and both channel ends flipping to REVOKED."""

    def run():
        engine, transport, client_ep, server_ep = _world(key_store)
        cred = engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
        server_ep.listen(
            "echo",
            AuthorizationSuite(
                identity=engine.identity("EchoSvc"),
                authorizer=RoleAuthorizer(engine, "Comp.NY.Member"),
            ),
        )
        connection = client_ep.connect(
            "s", "echo",
            AuthorizationSuite(identity=engine.identity("Alice"), credentials=[cred]),
        ).wait()
        connection.start_heartbeats(1.0)
        transport.scheduler.run_until(5.0)
        rtt = connection.last_rtt
        beats = connection.stats.heartbeats_answered
        t_revoke = transport.scheduler.now()
        engine.revoke(cred)
        transport.scheduler.run()
        t_detected = transport.scheduler.now()
        return rtt, beats, connection.state, t_detected - t_revoke

    rtt, beats, state, detection_lag = benchmark.pedantic(run, rounds=3, iterations=1)
    print_table(
        "E-SWB: channel monitoring on the virtual clock",
        ["metric", "value"],
        [
            ["heartbeat RTT (s)", f"{rtt:.4f}"],
            ["heartbeats answered in 5 s", beats],
            ["state after revocation", state.value],
            ["peer notification lag (s)", f"{detection_lag:.4f}"],
        ],
    )
    assert rtt == pytest.approx(2 * LINK_LATENCY, rel=0.05)
    assert state is ChannelState.REVOKED
    # Local monitor fires instantly; the revoked-notice frame plus any
    # in-flight heartbeat exchange bounds peer detection at ~2 RTT.
    assert detection_lag <= 4 * LINK_LATENCY + 1e-6


def test_monitoring_ablation_overhead(benchmark, key_store):
    """Heartbeats on vs off: frames carried for an otherwise idle channel."""

    def run(with_heartbeats: bool) -> int:
        engine, transport, client_ep, server_ep = _world(key_store)
        server_ep.listen("echo", AuthorizationSuite(identity=engine.identity("EchoSvc")))
        connection = client_ep.connect(
            "s", "echo", AuthorizationSuite(identity=engine.identity("Alice"))
        ).wait()
        base = transport.stats.messages_sent
        if with_heartbeats:
            connection.start_heartbeats(1.0)
        transport.scheduler.run_until(transport.scheduler.now() + 10.0)
        return transport.stats.messages_sent - base

    results = benchmark.pedantic(
        lambda: (run(True), run(False)), rounds=2, iterations=1
    )
    with_hb, without_hb = results
    print_table(
        "E-SWB ablation: idle-channel frames over 10 s",
        ["continuous monitoring", "frames"],
        [["on (1 s heartbeats)", with_hb], ["off", without_hb]],
    )
    assert without_hb == 0
    assert with_hb >= 18  # ~10 pings + ~10 pongs
