"""Table 3 — the original object (3a) and the XML view rules (3b).

Validates that the Table 3(a) component and Table 3(b) XML are faithfully
representable, and times XML parsing + validation of the partner view.
"""

from __future__ import annotations

import pytest

from repro.mail.client import MAIL_CLIENT_INTERFACES, MailClient
from repro.mail.views_specs import VIEW_MAIL_CLIENT_PARTNER_XML
from repro.views.spec import InterfaceMode, ViewSpec

from conftest import print_table


def test_table3a_component_shape(benchmark):
    """The represented object implements the three declared interfaces."""

    def check():
        client = MailClient(accounts={"a": {"name": "a", "phone": "1", "email": "e"}})
        covered = 0
        for iface in MAIL_CLIENT_INTERFACES:
            for sig in iface.methods:
                assert callable(getattr(client, sig.name))
                covered += 1
        # The private helper of Table 3a exists and is not on any interface.
        assert callable(client.findAccount)
        return covered

    assert benchmark(check) == 6
    print_table(
        "Table 3(a): MailClient interfaces",
        ["interface", "methods"],
        [[i.name, ", ".join(i.method_names())] for i in MAIL_CLIENT_INTERFACES],
    )


def test_table3b_xml_parse(benchmark):
    """Parse + validate the Table 3(b) XML rules."""
    spec = benchmark(lambda: ViewSpec.from_xml(VIEW_MAIL_CLIENT_PARTNER_XML))
    assert spec.name == "ViewMailClient_Partner"
    assert spec.represents == "MailClient"
    modes = {r.name: r.mode.value for r in spec.interfaces}
    print_table(
        "Table 3(b): ViewMailClient_Partner restrictions",
        ["interface", "type"],
        sorted(modes.items()),
    )
    assert modes == {
        "MessageI": "local",
        "NotesI": "rmi",
        "AddressI": "switchboard",
    }
    assert [f.name for f in spec.added_fields] == ["accountCopy"]


def test_table3b_roundtrip(benchmark):
    """XML -> spec -> XML -> spec is stable (the digest VIG caches on)."""
    spec = ViewSpec.from_xml(VIEW_MAIL_CLIENT_PARTNER_XML)

    def roundtrip():
        return ViewSpec.from_xml(spec.to_xml()).digest()

    assert benchmark(roundtrip) == spec.digest()
