"""E-SWB extension — SwitchboardStream bulk-transport mechanics.

The paper's channels expose "a custom socket" (SwitchboardStream, [6]).
This experiment measures sealed bulk-transfer cost across chunk sizes and
the encryption overhead against a plaintext frame of the same size —
the data-plane numbers behind the encryptor/decryptor design choice.
"""

from __future__ import annotations

import pytest

from repro.drbac import DrbacEngine
from repro.net import EventScheduler, Network, Transport
from repro.switchboard import (
    AuthorizationSuite,
    SwitchboardEndpoint,
)

from conftest import print_table

PAYLOAD = bytes(range(256)) * 256  # 64 KiB


def _channel_pair(key_store):
    engine = DrbacEngine(key_store=key_store)
    net = Network()
    net.add_node("a")
    net.add_node("b")
    net.add_link("a", "b", latency_s=0.001, bandwidth_bps=1e9)
    scheduler = EventScheduler()
    transport = Transport(net, scheduler)
    ep_a = SwitchboardEndpoint(transport, "a")
    ep_b = SwitchboardEndpoint(transport, "b")
    ep_b.listen("svc", AuthorizationSuite(identity=engine.identity("Svc")))
    client = ep_a.connect(
        "b", "svc", AuthorizationSuite(identity=engine.identity("User"))
    ).wait()
    server = ep_b.connections()[0]
    return transport, client, server


@pytest.mark.parametrize("chunk_size", [1024, 8192, 65536])
def test_stream_transfer_cost(benchmark, key_store, chunk_size):
    """64 KiB sealed transfer at different chunk granularities."""
    transport, client, server = _channel_pair(key_store)

    def transfer():
        stream = client.streams.open(chunk_size=chunk_size)
        stream.write(PAYLOAD)
        stream.close()
        transport.scheduler.run()
        return server.streams.incoming(stream.stream_id)

    incoming = benchmark(transfer)
    assert incoming.read_all()[-16:] == PAYLOAD[-16:]


def test_chunk_size_economics(benchmark, key_store):
    """Smaller chunks pay more per-frame AEAD + framing overhead."""
    import time

    transport, client, server = _channel_pair(key_store)

    def sweep():
        rows = []
        for chunk_size in (1024, 8192, 65536):
            t0 = time.perf_counter()
            stream = client.streams.open(chunk_size=chunk_size)
            stream.write(PAYLOAD)
            stream.close()
            transport.scheduler.run()
            elapsed = time.perf_counter() - t0
            throughput = len(PAYLOAD) / elapsed / 1e6
            rows.append(
                [chunk_size, stream.stats.chunks, f"{elapsed*1e3:.1f}", f"{throughput:.1f}"]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=3, iterations=1)
    print_table(
        "E-SWB: 64 KiB sealed stream transfer by chunk size",
        ["chunk (B)", "frames", "time (ms)", "MB/s"],
        rows,
    )
    # Shape: fewer, larger frames move the same bytes faster.
    times = [float(r[2]) for r in rows]
    assert times[0] > times[-1]
