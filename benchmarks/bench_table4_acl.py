"""Table 4 — role -> view access rules.

Regenerates the table by resolving the view for each scenario principal
through live cross-domain proofs, and times each resolution.
"""

from __future__ import annotations

import pytest

from conftest import print_table

EXPECTED = {
    "Alice": "ViewMailClient_Member",      # Comp.NY.Member directly
    "Bob": "ViewMailClient_Member",        # via Comp.SD.Member -> Comp.NY.Member
    "Charlie": "ViewMailClient_Partner",   # via Inc.SE.Member -> Comp.NY.Partner
    "Stranger": "ViewMailClient_Anonymous",
}


def test_table4_resolution(benchmark, shared_scenario):
    scenario = shared_scenario
    policy = scenario.psf.registrar.policy("MailClient")

    def resolve_all():
        return {
            client: policy.resolve(client, scenario.engine).view_name
            for client in EXPECTED
        }

    resolved = benchmark(resolve_all)
    rows = [
        [client, resolved[client], "default" if client == "Stranger" else "proof"]
        for client in EXPECTED
    ]
    print_table("Table 4: role -> view resolution", ["client", "view", "basis"], rows)
    assert resolved == EXPECTED


@pytest.mark.parametrize("client", list(EXPECTED))
def test_per_client_resolution_cost(benchmark, shared_scenario, client):
    policy = shared_scenario.psf.registrar.policy("MailClient")
    decision = benchmark(lambda: policy.resolve(client, shared_scenario.engine))
    assert decision.view_name == EXPECTED[client]
