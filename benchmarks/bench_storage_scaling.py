"""E-STORE — credential-storage scaling (§5, related work).

The paper: GSI stores P x U records, CAS stores C x (P + U), and dRBAC
stores P + U + c (c = cross-domain mapping credentials).  This experiment
sweeps the federation size and regenerates the comparison series, then
checks the paper's ordering: dRBAC < CAS < GSI for any non-trivial
federation, with the gap widening as P and U grow.
"""

from __future__ import annotations

import pytest

from repro.baselines.cas import CasDeployment
from repro.baselines.gsi import GsiDeployment
from repro.drbac import DrbacEngine

from conftest import print_table

SWEEP = [(2, 2), (4, 8), (8, 16), (16, 32), (32, 64)]
COMMUNITIES = 3


def _gsi_records(p: int, u: int) -> int:
    deployment = GsiDeployment()
    for i in range(p):
        deployment.add_provider(f"prov{i}")
    for j in range(u):
        deployment.add_user(f"user{j}")
    return deployment.total_records


def _cas_records(p: int, u: int, c: int = COMMUNITIES) -> int:
    deployment = CasDeployment()
    for k in range(c):
        deployment.add_community(f"com{k}")
    for i in range(p):
        deployment.add_provider(f"prov{i}")
    for j in range(u):
        deployment.enroll_user(f"user{j}")
    return deployment.total_records


def _drbac_records(engine_factory, p: int, u: int) -> int:
    """dRBAC bookkeeping: one credential per user (its home role), one
    role-definition credential per provider domain policy, plus a constant
    number of cross-domain mappings (c)."""
    engine = engine_factory()
    for i in range(p):
        # Each provider publishes its local access policy role once.
        engine.delegate("Home", f"Provider{i}.Service", "Home.Accessible")
    for j in range(u):
        engine.delegate("Home", f"user{j}", "Home.Member")
    # Cross-domain mapping credentials: constant in P and U.
    for k in range(COMMUNITIES):
        engine.delegate("Home", f"Dom{k}.Member", "Home.Member")
    return engine.repository.credential_count


def test_storage_scaling_series(benchmark, key_store):
    """Regenerate the comparison table across federation sizes."""

    def engine_factory():
        return DrbacEngine(key_store=key_store, verify_signatures=False)

    def sweep():
        rows = []
        for p, u in SWEEP:
            gsi = _gsi_records(p, u)
            cas = _cas_records(p, u)
            drbac = _drbac_records(engine_factory, p, u)
            rows.append([f"P={p} U={u}", gsi, cas, drbac])
        return rows

    rows = benchmark(sweep)
    print_table(
        "E-STORE: authorization records stored",
        ["federation", "GSI (PxU)", f"CAS (Cx(P+U), C={COMMUNITIES})", "dRBAC (P+U+c)"],
        rows,
    )
    # Shape checks: exact formulas and the paper's ordering.
    for (p, u), row in zip(SWEEP, rows):
        _, gsi, cas, drbac = row
        assert gsi == p * u
        assert cas == COMMUNITIES * (p + u)
        assert drbac == p + u + COMMUNITIES
        if p >= 8:
            assert drbac < cas < gsi
    # The gap widens: GSI/dRBAC ratio grows monotonically.
    ratios = [row[1] / row[3] for row in rows]
    assert all(a < b for a, b in zip(ratios, ratios[1:]))


def test_gsi_enrollment_cost(benchmark):
    """Marginal cost of adding one user to a 32-provider GSI federation."""
    deployment = GsiDeployment()
    for i in range(32):
        deployment.add_provider(f"prov{i}")
    counter = iter(range(10**9))

    def enroll():
        deployment.add_user(f"user{next(counter)}")

    benchmark(enroll)
    assert deployment.total_records >= 32


def test_drbac_enrollment_cost(benchmark, key_store):
    """Marginal cost of adding one user under dRBAC: one credential."""
    engine = DrbacEngine(key_store=key_store, verify_signatures=False)
    counter = iter(range(10**9))

    def enroll():
        engine.delegate("Home", f"user{next(counter)}", "Home.Member")

    benchmark(enroll)
