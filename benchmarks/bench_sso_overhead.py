"""E-SSO — single sign-on: authorize-once views vs. per-call checking.

§4.2: "Views permit single sign-on usage, because authentication and
authorization decisions can be completed when the view is first
instantiated.  After that clients are free to access the view they
receive, without additional access control."

The comparison: N requests through (a) a view whose authorization happened
at instantiation vs. (b) a Legion-MayI-style wrapper that re-runs the
dRBAC proof on every call.  The shape to reproduce: per-call cost for the
view is flat and small; the baseline pays a proof per request, so the gap
grows linearly with N.
"""

from __future__ import annotations

import time

import pytest

from repro.baselines.acl_per_call import PerCallGuardedService
from repro.mail.client import MAIL_CLIENT_INTERFACES, MailClient
from repro.mail.views_specs import VIEW_MAIL_CLIENT_MEMBER
from repro.views import InterfaceRegistry, Vig, ViewRuntime

from conftest import print_table

N_CALLS = 50


def _accounts():
    return {"alice": {"name": "alice", "phone": "212", "email": "a@x"}}


@pytest.fixture(scope="module")
def member_view(key_store):
    registry = InterfaceRegistry()
    for iface in MAIL_CLIENT_INTERFACES:
        registry.register(iface)
    vig = Vig(registry)
    view_cls = vig.generate(VIEW_MAIL_CLIENT_MEMBER, MailClient)
    original = MailClient(accounts=_accounts())
    return view_cls(ViewRuntime(local_objects={"MailClient": original}))


@pytest.fixture(scope="module")
def guarded_service(key_store):
    from repro.drbac import DrbacEngine

    engine = DrbacEngine(key_store=key_store)
    engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
    # A realistic repository with distractor credentials.
    for i in range(50):
        engine.delegate("Comp.NY", f"other{i}", "Comp.NY.Member")
    return PerCallGuardedService(MailClient(accounts=_accounts()), engine, "Comp.NY.Member")


def test_view_call_cost(benchmark, member_view):
    """(a) authorized-at-instantiation view: per-call cost."""
    benchmark(lambda: member_view.getPhone("alice"))


def test_per_call_acl_cost(benchmark, guarded_service):
    """(b) Legion-MayI baseline: proof search on every call."""
    benchmark(lambda: guarded_service.invoke("Alice", "getPhone", ["alice"]))


def test_cached_proof_call_cost(benchmark, key_store):
    """(c) middle ground: per-call check against a monitored proof cache."""
    from repro.drbac import CachedAuthorizer, DrbacEngine

    engine = DrbacEngine(key_store=key_store)
    engine.delegate("Comp.NY", "Alice", "Comp.NY.Member")
    cache = CachedAuthorizer(engine)
    target = MailClient(accounts=_accounts())

    def call():
        cache.authorize("Alice", "Comp.NY.Member")
        return target.getPhone("alice")

    assert benchmark(call) == "212"


def test_sso_speedup_table(benchmark, member_view, guarded_service):
    """The headline comparison across N calls."""

    def run_batch():
        t0 = time.perf_counter()
        for _ in range(N_CALLS):
            member_view.getPhone("alice")
        view_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(N_CALLS):
            guarded_service.invoke("Alice", "getPhone", ["alice"])
        acl_time = time.perf_counter() - t0
        return view_time, acl_time

    view_time, acl_time = benchmark.pedantic(run_batch, rounds=3, iterations=1)
    speedup = acl_time / view_time if view_time else float("inf")
    print_table(
        f"E-SSO: {N_CALLS} requests, authorize-once view vs per-call proofs",
        ["mechanism", "total (ms)", "per call (us)"],
        [
            ["view (single sign-on)", f"{view_time*1e3:.2f}", f"{view_time/N_CALLS*1e6:.1f}"],
            ["per-call dRBAC proof", f"{acl_time*1e3:.2f}", f"{acl_time/N_CALLS*1e6:.1f}"],
            ["speedup", f"{speedup:.1f}x", ""],
        ],
    )
    # Shape: single sign-on wins, and not marginally.
    assert acl_time > view_time * 2


def test_view_instantiation_amortization(benchmark, key_store):
    """Instantiation (the one-time authorization point) is bounded."""
    registry = InterfaceRegistry()
    for iface in MAIL_CLIENT_INTERFACES:
        registry.register(iface)
    vig = Vig(registry)
    view_cls = vig.generate(VIEW_MAIL_CLIENT_MEMBER, MailClient)
    original = MailClient(accounts=_accounts())

    benchmark(lambda: view_cls(ViewRuntime(local_objects={"MailClient": original})))
