"""E-PLAN — views increase deployment success in constrained environments.

§4.2: "By merely distributing component functionality between the original
and auxiliary objects, views increase the likelihood of the planner
finding a component deployment in constrained environments."

The sweep tightens the client's QoS (bandwidth demand, latency bound,
privacy with a pinned bulk channel) and measures planner success with and
without view-derived components.  The shape to reproduce: the success-rate
gap opens as constraints tighten.
"""

from __future__ import annotations

import pytest

from repro.errors import PlanningError
from repro.psf import EdgeRequirement, ServiceRequest

from conftest import print_table

# (label, request kwargs) from loose to tight.
CONSTRAINT_LADDER = [
    ("unconstrained", EdgeRequirement()),
    ("privacy", EdgeRequirement(privacy=True)),
    ("privacy+bulk", EdgeRequirement(privacy=True, channel="rmi")),
    ("bw 5 Mbps", EdgeRequirement(min_bandwidth_bps=5e6)),
    ("bw 50 Mbps", EdgeRequirement(min_bandwidth_bps=50e6)),
    ("bw 50 Mbps + privacy", EdgeRequirement(min_bandwidth_bps=50e6, privacy=True)),
    ("latency 10 ms", EdgeRequirement(max_latency_s=0.010)),
    ("latency 10 ms + privacy+bulk",
     EdgeRequirement(max_latency_s=0.010, privacy=True, channel="rmi")),
]

CLIENTS = [("Bob", "sd-pc1"), ("Alice", "ny-pc2")]


def _success(planner, client, node, qos) -> bool:
    try:
        planner.plan(
            ServiceRequest(client=client, client_node=node, interface="MailI", qos=qos)
        )
        return True
    except PlanningError:
        return False


def test_plan_success_ladder(benchmark, shared_scenario):
    psf = shared_scenario.psf

    def sweep():
        rows = []
        for label, qos in CONSTRAINT_LADDER:
            with_views = sum(
                _success(psf.planner(use_views=True), c, n, qos) for c, n in CLIENTS
            )
            without_views = sum(
                _success(psf.planner(use_views=False), c, n, qos) for c, n in CLIENTS
            )
            rows.append([label, f"{with_views}/{len(CLIENTS)}", f"{without_views}/{len(CLIENTS)}"])
        return rows

    rows = benchmark(sweep)
    print_table(
        "E-PLAN: planner success with vs. without views",
        ["constraint", "with views", "without views"],
        rows,
    )
    by_label = {r[0]: (r[1], r[2]) for r in rows}
    # Loose constraints: both succeed.
    assert by_label["unconstrained"] == ("2/2", "2/2")
    # Bandwidth-constrained remote clients need the cache: views win.
    assert by_label["bw 50 Mbps"][0] == "2/2"
    assert by_label["bw 50 Mbps"][1] != "2/2"
    assert by_label["latency 10 ms"][0] == "2/2"
    # Views never hurt: with-views success >= without-views everywhere.
    for label, (with_v, without_v) in by_label.items():
        assert int(with_v.split("/")[0]) >= int(without_v.split("/")[0])


@pytest.mark.parametrize("use_views", [True, False])
def test_planning_cost(benchmark, shared_scenario, use_views):
    """Planner wall time for the privacy+bulk request."""
    psf = shared_scenario.psf
    qos = EdgeRequirement(privacy=True, channel="rmi")

    def plan():
        return psf.planner(use_views=use_views).plan(
            ServiceRequest(client="Bob", client_node="sd-pc1", interface="MailI", qos=qos)
        )

    plan_result = benchmark(plan)
    assert plan_result.deployed_names()
