"""Shared benchmark fixtures.

Benchmarks use full-size (1024-bit) RSA keys by default so the reported
crypto costs are representative; set the key store once per session.
Every experiment prints its paper-shaped table to stdout (run with
``pytest benchmarks/ --benchmark-only -s`` to see them); EXPERIMENTS.md
records the measured numbers.

Each benchmark also snapshots the :mod:`repro.obs` metrics registry into
``benchmark.extra_info["obs"]``, so a ``--benchmark-json=BENCH_*.json``
run records internal counters (proof edges visited, frames sent, plan
backtracks, ...) next to the wall-clock numbers.  Set ``REPRO_OBS=0`` to
measure the zero-cost disabled mode instead.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.crypto import KeyStore
from repro.mail import build_scenario

BENCH_KEY_BITS = 1024


@pytest.fixture(autouse=True)
def obs_snapshot(request):
    """Reset metrics per benchmark; attach the snapshot to its results."""
    obs.reset()
    yield
    benchmark = request.node.funcargs.get("benchmark")
    if benchmark is None:
        return
    snapshot = obs.snapshot()
    if any(snapshot.values()):
        benchmark.extra_info["obs"] = snapshot


@pytest.fixture(scope="session")
def key_store() -> KeyStore:
    return KeyStore(key_bits=BENCH_KEY_BITS)


@pytest.fixture(scope="session")
def shared_scenario(key_store):
    """Read-only scenario shared across benchmarks."""
    return build_scenario(key_store=key_store)


@pytest.fixture()
def scenario_factory(key_store):
    def build(**kwargs):
        kwargs.setdefault("key_store", key_store)
        return build_scenario(**kwargs)

    return build


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Uniform fixed-width table printer for experiment outputs."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
