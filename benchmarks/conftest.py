"""Shared benchmark fixtures.

Benchmarks use full-size (1024-bit) RSA keys by default so the reported
crypto costs are representative; set the key store once per session.
Every experiment prints its paper-shaped table to stdout (run with
``pytest benchmarks/ --benchmark-only -s`` to see them); EXPERIMENTS.md
records the measured numbers.
"""

from __future__ import annotations

import pytest

from repro.crypto import KeyStore
from repro.mail import build_scenario

BENCH_KEY_BITS = 1024


@pytest.fixture(scope="session")
def key_store() -> KeyStore:
    return KeyStore(key_bits=BENCH_KEY_BITS)


@pytest.fixture(scope="session")
def shared_scenario(key_store):
    """Read-only scenario shared across benchmarks."""
    return build_scenario(key_store=key_store)


@pytest.fixture()
def scenario_factory(key_store):
    def build(**kwargs):
        kwargs.setdefault("key_store", key_store)
        return build_scenario(**kwargs)

    return build


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Uniform fixed-width table printer for experiment outputs."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
