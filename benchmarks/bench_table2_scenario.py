"""Table 2 — the three-site credential set and every §3.3 authorization.

Regenerates the Table 2 rows (all seventeen credentials in the paper's
bracket notation) and times the authorization decisions built on them:
client authorization (Alice, Bob cross-domain, Charlie third-party), node
authorization (property translation chains), and component authorization
(Executable roles with attenuated CPU).
"""

from __future__ import annotations

import pytest

from repro.drbac.model import EntityRef, Role

from conftest import print_table


def test_table2_credentials(benchmark, shared_scenario):
    """Print the credential set; benchmark re-verifying every signature."""
    scenario = shared_scenario
    engine = scenario.engine
    rows = [
        [number, str(delegation)]
        for number, delegation in sorted(scenario.credentials.items())
    ]
    print_table("Table 2: Guard-issued credentials", ["#", "credential"], rows)

    def verify_all():
        ok = 0
        for delegation in scenario.credentials.values():
            if delegation.verify_signature(engine.public_identity(delegation.issuer)):
                ok += 1
        return ok

    assert benchmark(verify_all) == 17


def test_client_authorization_bob(benchmark, shared_scenario):
    """Bob -> Comp.NY.Member via credentials (11)+(2)."""
    engine = shared_scenario.engine
    proof = benchmark(lambda: engine.find_proof("Bob", "Comp.NY.Member"))
    assert proof is not None and len(proof.chain) == 2


def test_client_authorization_charlie(benchmark, shared_scenario):
    """Charlie -> Comp.NY.Partner via (15)+(12), supported by (3)."""
    engine = shared_scenario.engine
    proof = benchmark(lambda: engine.find_proof("Charlie", "Comp.NY.Partner"))
    assert proof is not None and proof.support


def test_node_authorization_sd(benchmark, shared_scenario):
    """sd-pc1 -> Mail.Node(Secure, Trust) via (13)+(5)."""
    engine = shared_scenario.engine
    proof = benchmark(
        lambda: engine.is_a("sd-pc1", "Mail.Node with Secure={true} Trust=(0,5)")
    )
    assert proof is not None


def test_component_authorization_budgets(benchmark, shared_scenario):
    """CPU budgets across domains: 100 (NY), 80 (SD), 40 (SE)."""
    scenario = shared_scenario

    def budgets():
        return (
            scenario.ny_guard.component_cpu_budget(Role("Mail", "MailClient")),
            scenario.sd_guard.component_cpu_budget(Role("Mail", "Encryptor")),
            scenario.se_guard.component_cpu_budget(Role("Mail", "Decryptor")),
        )

    result = benchmark(budgets)
    print_table(
        "Component authorization (attenuated CPU budgets)",
        ["component", "domain", "budget"],
        [
            ["Mail.MailClient", "Comp.NY", result[0]],
            ["Mail.Encryptor", "Comp.SD", result[1]],
            ["Mail.Decryptor", "Inc.SE", result[2]],
        ],
    )
    assert result == (100, 80, 40)


def test_scenario_build_cost(benchmark, scenario_factory):
    """Time to construct the entire three-site world from scratch."""
    scenario = benchmark(scenario_factory)
    assert len(scenario.credentials) == 17
