"""E-CHURN — authorization cost under credential churn, full vs incremental.

Replays one seeded publish/revoke/expiry/authorize schedule
(``repro.load.churn``) through both authorization arms and reports the
deterministic work-unit comparison — the wall-clock numbers from
``benchmark`` ride along, but the headline is the authorize-after-revoke
throughput ratio, which is seed-stable.  ``BENCH_churn.json`` (written by
``python -m repro bench-churn --seed 7 --json --out BENCH_churn.json``)
records the checked-in snapshot.
"""

from __future__ import annotations

from repro.load.churn import ChurnBench

from conftest import print_table

SEED = 7
OPS = 600


def test_churn_full_vs_incremental(benchmark, key_store):
    bench = ChurnBench(seed=SEED, ops=OPS, key_store=key_store)
    report = benchmark(bench.run)

    rows = []
    for name in ("full", "incremental"):
        arm = report["arms"][name]
        pr = arm["post_revoke"]
        rows.append(
            [
                name,
                arm["work_units"],
                arm["search_edges"],
                arm["repo_queries"],
                arm["incr_work"],
                f"{pr['count']}/{pr['work_units']}",
                pr["throughput_per_kwork"],
            ]
        )
    print_table(
        f"E-CHURN: seed={SEED} ops={OPS} "
        f"speedup={report['speedup']['authorize_after_revoke']}x "
        f"(overall work {report['speedup']['overall_work']}x)",
        ["arm", "work", "edges", "queries", "incr", "post-revoke q/w", "per kwork"],
        rows,
    )

    assert report["transcripts_match"], "arms returned different verdicts"
    assert report["oracle_agrees"], "an arm disagreed with the naive oracle"
    assert report["speedup"]["authorize_after_revoke"] >= 3.0, report["speedup"]


def test_churn_is_deterministic(key_store):
    """Same seed, same report — byte-stable across runs."""
    first = ChurnBench(seed=SEED, ops=200, key_store=key_store).run()
    second = ChurnBench(seed=SEED, ops=200, key_store=key_store).run()
    assert first == second
