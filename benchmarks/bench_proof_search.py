"""E-PROOF — proof-graph search cost as credential sets grow.

The dRBAC mechanism cost (§3.1): chains must be found among distractor
credentials.  Sweeps chain depth and repository noise; reports wall time
and edges visited for both search strategies (the regression/progression
ablation DESIGN.md calls out).
"""

from __future__ import annotations

import pytest

from repro.drbac.delegation import issue
from repro.drbac.model import EntityRef, Role
from repro.drbac.proof import ProofEngine
from repro.drbac.repository import DistributedRepository

from conftest import print_table

DEPTHS = [2, 4, 8]
NOISE = [0, 50, 200]


def _world(key_store, depth: int, noise: int):
    """A depth-`depth` chain for user `u` plus `noise` distractors."""
    creds = [issue(key_store.identity("D0"), EntityRef("u"), Role("D0", "R"))]
    for i in range(1, depth):
        creds.append(
            issue(
                key_store.identity(f"D{i}"),
                Role(f"D{i-1}", "R"),
                Role(f"D{i}", "R"),
            )
        )
    for n in range(noise):
        dom = f"N{n % 10}"
        creds.append(
            issue(
                key_store.identity(dom),
                EntityRef(f"user{n}"),
                Role(dom, f"R{n}"),
            )
        )
    identities = {}
    for cred in creds:
        identities[cred.issuer] = key_store.public(cred.issuer)
    goal = Role(f"D{depth-1}", "R")
    return creds, identities, goal


@pytest.fixture(scope="module")
def worlds(key_store):
    return {
        (depth, noise): _world(key_store, depth, noise)
        for depth in DEPTHS
        for noise in NOISE
    }


def test_proof_search_scaling_table(benchmark, worlds):
    """Edges visited per (depth, noise) cell, both directions."""

    def sweep():
        rows = []
        for (depth, noise), (creds, identities, goal) in sorted(worlds.items()):
            engine = ProofEngine(identities, verify_signatures=False)
            regression = engine.find_proof(EntityRef("u"), goal, creds, direction="regression")
            regression_edges = engine.edges_visited
            progression = engine.find_proof(EntityRef("u"), goal, creds, direction="progression")
            progression_edges = engine.edges_visited
            assert regression is not None and progression is not None
            rows.append([depth, noise, regression_edges, progression_edges])
        return rows

    rows = benchmark(sweep)
    print_table(
        "E-PROOF: edges visited (regression vs progression)",
        ["chain depth", "distractors", "regression", "progression"],
        rows,
    )
    # Shape: work grows with depth; indexing keeps distractors nearly free.
    by_cell = {(r[0], r[1]): (r[2], r[3]) for r in rows}
    for noise in NOISE:
        assert by_cell[(8, noise)][0] >= by_cell[(2, noise)][0]


@pytest.mark.parametrize("direction", ["regression", "progression"])
@pytest.mark.parametrize("depth", DEPTHS)
def test_search_time(benchmark, worlds, direction, depth):
    creds, identities, goal = worlds[(depth, 200)]
    engine = ProofEngine(identities, verify_signatures=False)

    proof = benchmark(
        lambda: engine.find_proof(EntityRef("u"), goal, creds, direction=direction)
    )
    assert proof is not None and len(proof.chain) == depth


def test_signature_verification_overhead(benchmark, worlds, key_store):
    """The cost of authenticating the credential set before search."""
    creds, identities, goal = worlds[(4, 50)]
    engine = ProofEngine(identities, verify_signatures=True)

    proof = benchmark(lambda: engine.find_proof(EntityRef("u"), goal, creds))
    assert proof is not None


def test_forked_world_asymmetry(benchmark, key_store):
    """Where the two strategies differ: goal-directed vs subject-directed.

    World A fans out from the subject (u holds many irrelevant roles):
    progression wades through the fan-out, regression walks straight back
    from the goal.  World B fans into the goal (many dead-end credentials
    grant the goal role to the wrong subjects): regression inspects each,
    progression never looks at them.
    """
    fanout = 30
    # The useful credential comes *after* the distractors, so a strategy
    # that enumerates the wrong side of the graph pays for every fork.
    # World A: subject fan-out.
    a_creds = [
        issue(key_store.identity("Misc"), EntityRef("u"), Role("Misc", f"R{i}"))
        for i in range(fanout)
    ]
    a_creds.append(issue(key_store.identity("G"), EntityRef("u"), Role("G", "Target")))
    # World B: goal fan-in.
    b_creds = [
        issue(key_store.identity("G"), EntityRef(f"other{i}"), Role("G", "Target"))
        for i in range(fanout)
    ]
    b_creds.append(issue(key_store.identity("G"), EntityRef("u"), Role("G", "Target")))
    identities = {
        "G": key_store.public("G"),
        "Misc": key_store.public("Misc"),
    }
    goal = Role("G", "Target")

    def measure():
        cells = {}
        for label, creds in (("subject fan-out", a_creds), ("goal fan-in", b_creds)):
            engine = ProofEngine(identities, verify_signatures=False)
            assert engine.find_proof(EntityRef("u"), goal, creds, direction="regression")
            regression = engine.edges_visited
            assert engine.find_proof(EntityRef("u"), goal, creds, direction="progression")
            progression = engine.edges_visited
            cells[label] = (regression, progression)
        return cells

    cells = benchmark(measure)
    print_table(
        "E-PROOF: strategy asymmetry on forked worlds (edges visited)",
        ["world", "regression", "progression"],
        [[label, r, p] for label, (r, p) in cells.items()],
    )
    fan_out_r, fan_out_p = cells["subject fan-out"]
    fan_in_r, fan_in_p = cells["goal fan-in"]
    assert fan_out_r < fan_out_p   # regression ignores the subject's fan-out
    assert fan_in_p <= fan_in_r    # progression ignores the goal's fan-in


def test_repository_harvest_cost(benchmark, worlds, key_store):
    """Discovery-tag routed collection from the distributed repository."""
    creds, identities, goal = worlds[(8, 200)]
    repo = DistributedRepository()
    repo.publish_all(creds)

    harvested = benchmark(lambda: repo.collect(EntityRef("u"), goal))
    # The harvest prunes distractors: far fewer than the full set.
    assert len(harvested) <= 20
