"""Planner ablation: first-feasible heuristic vs exhaustive optimal.

Sekitei is a satisficing planner ("the output of the planner is a
sequence of component deployments") with heuristics for network scale.
This experiment quantifies the trade-off our reproduction makes: how much
plan quality the first-feasible heuristic gives up against exhaustive
enumeration, and what the enumeration costs.
"""

from __future__ import annotations

import pytest

from repro.psf import EdgeRequirement, ServiceRequest

from conftest import print_table

REQUESTS = [
    ("direct", ServiceRequest(client="Bob", client_node="sd-pc1", interface="MailI")),
    (
        "privacy+bulk",
        ServiceRequest(
            client="Bob", client_node="sd-pc1", interface="MailI",
            qos=EdgeRequirement(privacy=True, channel="rmi"),
        ),
    ),
    (
        "bandwidth",
        ServiceRequest(
            client="Bob", client_node="sd-pc1", interface="MailI",
            qos=EdgeRequirement(min_bandwidth_bps=50e6),
        ),
    ),
    (
        "privacy, Seattle",
        ServiceRequest(
            client="Charlie", client_node="se-pc1", interface="MailI",
            qos=EdgeRequirement(privacy=True, channel="rmi"),
        ),
    ),
]


def test_quality_gap(benchmark, shared_scenario):
    planner = shared_scenario.psf.planner()

    def sweep():
        rows = []
        for label, req in REQUESTS:
            heuristic = planner.plan(req)
            optimal = planner.plan(req, optimize=True)
            candidates = len(planner.enumerate_plans(req))
            rows.append(
                [
                    label,
                    f"{planner.plan_cost(heuristic)*1000:.1f}",
                    f"{planner.plan_cost(optimal)*1000:.1f}",
                    candidates,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    print_table(
        "Planner ablation: plan cost (ms), heuristic vs optimal",
        ["request", "first-feasible", "optimal", "feasible configs"],
        rows,
    )
    for row in rows:
        assert float(row[2]) <= float(row[1]) + 1e-6


@pytest.mark.parametrize("optimize", [False, True])
def test_planning_time(benchmark, shared_scenario, optimize):
    """The price of optimality on the hardest request."""
    planner = shared_scenario.psf.planner()
    req = REQUESTS[1][1]

    plan = benchmark(lambda: planner.plan(req, optimize=optimize))
    assert plan.deployed_names()
