"""E-ADAPT — QoS adaptation (§2.2).

"PSF adapts to low available bandwidth by placing a *view mail server*
close to the client and to insecure links by placing <encryptor/decryptor>
pairs."  Regenerates the adaptation decisions for the scenario's clients
and times the plan+deploy pipeline.
"""

from __future__ import annotations

import pytest

from repro.psf import EdgeRequirement, ServiceRequest

from conftest import print_table

CASES = [
    (
        "baseline (Alice, NY LAN)",
        ServiceRequest(client="Alice", client_node="ny-pc1", interface="MailI"),
        True,
        [],  # nothing deployed: direct link
    ),
    (
        "low bandwidth (Bob, SD)",
        ServiceRequest(
            client="Bob", client_node="sd-pc1", interface="MailI",
            qos=EdgeRequirement(min_bandwidth_bps=50e6),
        ),
        True,
        ["ViewMailServer"],
    ),
    (
        "insecure bulk link (Bob, SD, no views)",
        ServiceRequest(
            client="Bob", client_node="sd-pc1", interface="MailI",
            qos=EdgeRequirement(privacy=True, channel="rmi"),
        ),
        False,
        ["Decryptor", "Encryptor"],
    ),
    (
        "insecure link, any channel (Charlie, SE)",
        ServiceRequest(
            client="Charlie", client_node="se-pc1", interface="MailI",
            qos=EdgeRequirement(privacy=True),
        ),
        True,
        [],  # switchboard channel, no components
    ),
]


def test_adaptation_decisions(benchmark, shared_scenario):
    psf = shared_scenario.psf

    def sweep():
        rows = []
        for label, request, use_views, expected in CASES:
            plan = psf.planner(use_views=use_views).plan(request)
            deployed = sorted(plan.deployed_names())
            entry_mode = plan.links[0].mode if plan.links else "?"
            rows.append([label, ", ".join(deployed) or "(direct)", entry_mode, expected])
        return rows

    rows = benchmark(sweep)
    print_table(
        "E-ADAPT: planner adaptation per environment condition",
        ["condition", "deployed components", "client channel"],
        [r[:3] for r in rows],
    )
    for (label, _, _, expected), row in zip(CASES, rows):
        deployed = row[1]
        expected_str = ", ".join(sorted(expected)) or "(direct)"
        assert deployed == expected_str, f"{label}: {deployed} != {expected_str}"


def test_plan_and_deploy_pipeline(benchmark, scenario_factory):
    """Wall time for the full request_service flow (plan + deploy +
    client handle) on the cache-adaptation case."""
    scenario = scenario_factory()
    request = ServiceRequest(
        client="Bob", client_node="sd-pc1", interface="MailI",
        qos=EdgeRequirement(privacy=True, channel="rmi"),
    )

    def flow():
        return scenario.psf.request_service(request)

    session = benchmark.pedantic(flow, rounds=3, iterations=1)
    assert session.plan.deployed_names() == ["ViewMailServer"]


def test_replan_after_environment_change(benchmark, scenario_factory):
    """The monitoring loop: a link losing its security property changes
    the plan from direct RMI to an adapted configuration."""
    scenario = scenario_factory()
    psf = scenario.psf
    request = ServiceRequest(
        client="Alice", client_node="ny-pc1", interface="MailI",
        qos=EdgeRequirement(privacy=True, channel="rmi"),
    )

    def replan():
        # Secure LAN: direct plaintext link is fine.
        before = psf.planner().plan(request)
        # The monitor reports the LAN link as compromised.
        psf.monitor.set_link_security("ny-pc1", "ny-server", False)
        psf.monitor.set_link_security("ny-pc1", "ny-gw", False)
        after = psf.planner().plan(request)
        # Restore for the next benchmark round.
        psf.monitor.set_link_security("ny-pc1", "ny-server", True)
        psf.monitor.set_link_security("ny-pc1", "ny-gw", True)
        return before, after

    before, after = benchmark.pedantic(replan, rounds=3, iterations=1)
    assert before.deployed_names() == []
    assert after.deployed_names() != []
    print_table(
        "E-ADAPT: replanning after link compromise",
        ["environment", "deployment"],
        [
            ["secure LAN", "(direct rmi)"],
            ["compromised LAN", ", ".join(sorted(after.deployed_names()))],
        ],
    )
