"""E-CHAOS — fault injection & recovery under a seeded storm.

Runs the deterministic chaos harness (``repro.faults.ChaosRunner``) end
to end and reports, per fault class, how many faults were injected and
recovered plus the measured recovery latencies.  The same seed always
produces the same storm, so these numbers are stable run to run.
"""

from __future__ import annotations

from repro.faults import ChaosRunner, FaultKind

from conftest import print_table

SEED = 7
DURATION = 5.0


def test_chaos_recovery(benchmark, key_store):
    def storm():
        runner = ChaosRunner(seed=SEED, duration=DURATION, key_store=key_store)
        return runner.run()

    report = benchmark(storm)
    # The runner meters itself inside obs.scoped(), so the ambient
    # registry the conftest snapshot reads stays empty; attach the
    # run-scoped metrics the report carries instead.
    benchmark.extra_info["obs"] = report.metrics

    injected = {}
    for entry in report.injections:
        if entry["phase"] == "inject":
            cls = FaultKind(entry["kind"]).fault_class
            injected[cls] = injected.get(cls, 0) + 1
    rows = [
        [cls, injected[cls], report.recoveries.get(cls, 0)]
        for cls in sorted(injected)
    ]
    print_table(
        f"E-CHAOS: seed={SEED} duration={DURATION}s "
        f"({len(report.probes)} probes, {len(report.violations)} violations)",
        ["fault class", "injected", "recovered"],
        rows,
    )

    assert report.violations == []
    for cls, count in injected.items():
        assert report.recoveries.get(cls, 0) >= 1, f"no recovery for {cls}"


def test_chaos_scales_with_intensity(benchmark, key_store):
    """A wilder storm (more fault rounds) must still recover every class."""

    def storm():
        runner = ChaosRunner(
            seed=SEED, duration=10.0, intensity=1.5, key_store=key_store
        )
        return runner.run()

    report = benchmark(storm)
    assert report.violations == []
    assert len(report.events) >= 6
