"""E-VIG — view generation cost proportional to utility (§4.3).

"The generation of the code for a view is deferred to the time this view
is first deployed.  This ensures that despite their flexibility, views
incur management costs proportional to their utility."

Sweeps the spec size (number of interfaces/methods on the represented
object) and reports generation time, plus the cold/cached ratio that makes
deferral worthwhile.
"""

from __future__ import annotations

import pytest

from repro.views import (
    InterfaceDef,
    InterfaceRegistry,
    MethodSig,
    Vig,
    ViewRuntime,
    ViewSpec,
)
from repro.views.spec import InterfaceMode, InterfaceRestriction

from conftest import print_table

SIZES = [2, 8, 32]


def _make_class(n_methods: int) -> type:
    # __init__ must assign via `self.state = ...` so VIG's field scan
    # (which mirrors Javassist's declaration analysis) can see the field.
    namespace: dict = {}
    exec("def __init__(self):\n    self.state = 0", namespace)
    for i in range(n_methods):
        exec(
            f"def m{i}(self):\n    self.state = self.state + {i}\n    return self.state",
            namespace,
        )
    namespace.pop("__builtins__", None)
    return type(f"Wide{n_methods}", (), namespace)


def _spec_and_vig(n_methods: int):
    cls = _make_class(n_methods)
    iface = InterfaceDef(
        f"WideI{n_methods}",
        tuple(MethodSig(f"m{i}", ()) for i in range(n_methods)),
    )
    registry = InterfaceRegistry()
    registry.register(iface)
    spec = ViewSpec(
        name=f"WideView{n_methods}",
        represents=cls.__name__,
        interfaces=(InterfaceRestriction(iface.name, InterfaceMode.LOCAL),),
    )
    return cls, spec, registry


@pytest.mark.parametrize("n_methods", SIZES)
def test_generation_scales_with_spec_size(benchmark, n_methods):
    cls, spec, registry = _spec_and_vig(n_methods)

    def generate():
        return Vig(registry).generate(spec, cls)

    view_cls = benchmark(generate)
    copied = [
        m for m in vars(view_cls) if m.startswith("m") and m[1:].isdigit()
    ]
    assert len(copied) == n_methods


def test_cold_vs_cached_ratio(benchmark):
    """Deferral pays: cached lookups are orders of magnitude cheaper."""
    import time

    cls, spec, registry = _spec_and_vig(16)

    def measure():
        vig = Vig(registry)
        t0 = time.perf_counter()
        vig.generate(spec, cls)
        cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(100):
            vig.generate(spec, cls)
        cached = (time.perf_counter() - t0) / 100
        return cold, cached

    cold, cached = benchmark.pedantic(measure, rounds=3, iterations=1)
    print_table(
        "E-VIG: deferred generation economics",
        ["path", "time (us)"],
        [
            ["cold generation", f"{cold*1e6:.1f}"],
            ["cache hit", f"{cached*1e6:.1f}"],
            ["ratio", f"{cold/cached:.0f}x"],
        ],
    )
    assert cold > cached * 10


def test_generated_view_functional(benchmark):
    """Sanity: the widest generated view behaves like the original."""
    cls, spec, registry = _spec_and_vig(32)
    vig = Vig(registry)
    view_cls = vig.generate(spec, cls)
    origin = cls()

    def exercise():
        view = view_cls(ViewRuntime(local_objects={cls.__name__: origin}))
        return view.m5()

    assert benchmark(exercise) is not None
