"""Policy-translation sync cost (§6 future work, implemented).

Measures the incremental mirror: initial sync of N native grants, the
no-op steady-state sync, and the cost of propagating one native
revocation into dRBAC (which must also fire live monitors).
"""

from __future__ import annotations

import pytest

from repro.drbac import DrbacEngine
from repro.drbac.model import Role
from repro.drbac.translate import (
    CapabilityPolicy,
    PolicyTranslator,
    TranslationRule,
)

from conftest import print_table

GRANT_COUNTS = [10, 50, 200]


def _world(key_store, grants: int):
    engine = DrbacEngine(key_store=key_store, verify_signatures=False)
    policy = CapabilityPolicy()
    for i in range(grants):
        policy.grant(f"user{i}", "access")
    translator = PolicyTranslator(
        engine, "Dom", policy, [TranslationRule("access", Role("Dom", "User"))]
    )
    return engine, policy, translator


@pytest.mark.parametrize("grants", GRANT_COUNTS)
def test_initial_sync_cost(benchmark, key_store, grants):
    """First sync mirrors every native grant (one signature each)."""

    def run():
        _, _, translator = _world(key_store, grants)
        report = translator.sync()
        return len(report.issued)

    assert benchmark.pedantic(run, rounds=3, iterations=1) == grants


def test_steady_state_sync_is_cheap(benchmark, key_store):
    """With nothing changed, sync only diffs the grant sets."""
    engine, policy, translator = _world(key_store, 200)
    translator.sync()

    def run():
        return translator.sync()

    report = benchmark(run)
    assert not report.issued and not report.revoked


def test_revocation_propagation(benchmark, key_store):
    """One native revocation: revoke + live-monitor notification."""
    engine, policy, translator = _world(key_store, 50)
    translator.sync()
    counter = iter(range(10**9))

    def run():
        i = next(counter) % 50
        policy.revoke(f"user{i}", "access")
        report = translator.sync()
        policy.grant(f"user{i}", "access")
        translator.sync()
        return len(report.revoked)

    assert benchmark(run) == 1


def test_translation_summary(benchmark, key_store):
    def sweep():
        rows = []
        for grants in GRANT_COUNTS:
            engine, policy, translator = _world(key_store, grants)
            report = translator.sync()
            rows.append([grants, len(report.issued), translator.mirrored_count()])
        return rows

    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    print_table(
        "Policy translation: native grants mirrored into dRBAC",
        ["native grants", "credentials issued", "mirrored"],
        rows,
    )
    for grants, issued, mirrored in rows:
        assert issued == mirrored == grants
