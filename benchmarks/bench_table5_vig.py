"""Table 5 — the VIG-generated view class.

Checks the generated ``ViewMailClient_Partner`` against the structure the
paper's Table 5 shows — copied local methods, an RMI forwarder for NotesI,
a Switchboard forwarder for AddressI, the accountCopy field, the four
coherence methods, and a cache manager initialized in the constructor —
and times generation (cold) vs. cache hit.
"""

from __future__ import annotations

import pytest

from repro.mail.client import MAIL_CLIENT_INTERFACES, MailClient
from repro.mail.views_specs import VIEW_MAIL_CLIENT_PARTNER
from repro.views import InterfaceRegistry, Vig, ViewRuntime
from repro.views.spec import COHERENCE_METHODS

from conftest import print_table


def _fresh_vig():
    registry = InterfaceRegistry()
    for iface in MAIL_CLIENT_INTERFACES:
        registry.register(iface)
    return Vig(registry)


def test_table5_structure(benchmark):
    """Generated class matches the Table 5 layout."""
    vig = _fresh_vig()
    view_cls = benchmark(lambda: Vig(vig.interfaces).generate(VIEW_MAIL_CLIENT_PARTNER, MailClient))

    rows = []
    # Local interface methods are copied and coherence-wrapped.
    for name in ("sendMessage", "receiveMessages"):
        fn = getattr(view_cls, name)
        assert getattr(fn, "__coherence_wrapped__", False)
        rows.append([name, "local copy (acquire/release wrapped)"])
    # NotesI methods forward through the RMI stub field.
    assert getattr(view_cls.addNote, "__forwarder__", "") == "_rmi_NotesI"
    rows.append(["addNote", "forwarder -> notesI_rmi"])
    # addMeeting is customized (user-supplied code), not a forwarder.
    assert not hasattr(view_cls.addMeeting, "__forwarder__")
    rows.append(["addMeeting", "customized (user-supplied code)"])
    # AddressI methods forward through the Switchboard stub field.
    for name in ("getPhone", "getEmail"):
        assert getattr(getattr(view_cls, name), "__forwarder__", "") == "_swb_AddressI"
        rows.append([name, "forwarder -> addrI_switch"])
    # The four coherence methods exist.
    for name in COHERENCE_METHODS:
        assert callable(getattr(view_cls, name))
        rows.append([name, "coherence method"])
    print_table("Table 5: generated ViewMailClient_Partner", ["member", "realization"], rows)

    # The constructor initializes a cache manager (Table 5's CacheManager).
    import inspect

    source_fields = view_cls.__view_spec__.added_fields
    assert [f.name for f in source_fields] == ["accountCopy"]


def test_generation_cold(benchmark):
    """Cold VIG generation cost (fresh generator each round)."""

    def generate():
        return _fresh_vig().generate(VIEW_MAIL_CLIENT_PARTNER, MailClient)

    view_cls = benchmark(generate)
    assert view_cls.__name__ == "ViewMailClient_Partner"


def test_generation_cached(benchmark):
    """Cache-hit cost: deferred generation pays only once (§4.3)."""
    vig = _fresh_vig()
    vig.generate(VIEW_MAIL_CLIENT_PARTNER, MailClient)

    view_cls = benchmark(lambda: vig.generate(VIEW_MAIL_CLIENT_PARTNER, MailClient))
    assert vig.stats.generated == 1
    assert vig.stats.cache_hits > 0


def test_member_view_instantiation(benchmark):
    """Constructing the all-local member view against a live original."""
    from repro.mail.views_specs import VIEW_MAIL_CLIENT_MEMBER

    vig = _fresh_vig()
    view_cls = vig.generate(VIEW_MAIL_CLIENT_MEMBER, MailClient)
    original = MailClient(accounts={"a": {"name": "a", "phone": "1", "email": "e"}})

    def construct():
        return view_cls(ViewRuntime(local_objects={"MailClient": original}))

    view = benchmark(construct)
    assert view.getPhone("a") == "1"
